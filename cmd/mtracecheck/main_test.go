package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mtracecheck"
	"mtracecheck/internal/check"
	"mtracecheck/internal/testgen"
)

func TestPlatformSelection(t *testing.T) {
	cases := []struct {
		isa, bug string
		wantName string
		wantErr  bool
	}{
		{"x86", "", "x86-64 Core2Quad", false},
		{"ARM", "", "ARMv7 Exynos5422", false},
		{"x86", "sm-inv", "gem5 8-core x86", false},
		{"x86", "lsq-skip", "gem5 8-core x86", false},
		{"ARM", "wb-race", "gem5 8-core x86", false},
		{"mips", "", "", true},
		{"x86", "bogus", "", true},
	}
	for _, c := range cases {
		p, err := platform(c.isa, c.bug)
		if c.wantErr {
			if err == nil {
				t.Errorf("platform(%q, %q): no error", c.isa, c.bug)
			}
			continue
		}
		if err != nil {
			t.Errorf("platform(%q, %q): %v", c.isa, c.bug, err)
			continue
		}
		if p.Name != c.wantName {
			t.Errorf("platform(%q, %q) = %q, want %q", c.isa, c.bug, p.Name, c.wantName)
		}
	}
}

func TestDumpSignaturesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sigs.bin")
	cfg := mtracecheck.TestConfig{Threads: 2, OpsPerThread: 20, Words: 4, Seed: 1}
	p, err := testgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := mtracecheck.Options{Iterations: 30, Seed: 2}
	if err := dumpSignatures(path, p, opts); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	uniques, err := mtracecheck.LoadSignatures(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(uniques) == 0 {
		t.Fatal("no signatures written")
	}
	total := 0
	for _, u := range uniques {
		total += u.Count
	}
	if total != 30 {
		t.Errorf("total observations = %d, want 30", total)
	}
}

func TestParseCheckerListsValidValues(t *testing.T) {
	for name, want := range map[string]mtracecheck.Checker{
		"collective":   mtracecheck.CheckerCollective,
		"conventional": mtracecheck.CheckerConventional,
		"incremental":  mtracecheck.CheckerIncremental,
		"vectorclock":  mtracecheck.CheckerVectorClock,
	} {
		got, err := parseChecker(name)
		if err != nil || got != want {
			t.Errorf("parseChecker(%q) = %v, %v", name, got, err)
		}
	}
	// Every registered backend must parse — the flag's valid set is the
	// registry, not a hand-maintained list.
	for _, name := range mtracecheck.CheckerNames() {
		if c, err := parseChecker(name); err != nil {
			t.Errorf("registered backend %q does not parse: %v", name, err)
		} else if c.String() != name {
			t.Errorf("parseChecker(%q).String() = %q", name, c)
		}
	}
	for _, bad := range []string{"", "colective", "pk"} {
		_, err := parseChecker(bad)
		if err == nil {
			t.Errorf("parseChecker(%q): no error", bad)
			continue
		}
		// The error's valid-value list is derived from the backend registry.
		for _, valid := range mtracecheck.CheckerNames() {
			if !strings.Contains(err.Error(), valid) {
				t.Errorf("parseChecker(%q) error %q does not list %q", bad, err, valid)
			}
		}
	}
}

// TestReportRunErrorExitCodes pins the exit-code contract: crashes are
// findings (1), quarantine overflow has its own code (3), everything else
// is infrastructure (2).
func TestReportRunErrorExitCodes(t *testing.T) {
	report := &mtracecheck.Report{Iterations: 5}
	cases := []struct {
		err  error
		want int
	}{
		{fmt.Errorf("boom: %w", mtracecheck.ErrCrash), exitFinding},
		{fmt.Errorf("wrapped: %w", mtracecheck.ErrQuarantineThreshold), exitQuarantine},
		{fmt.Errorf("wrapped: %w", mtracecheck.ErrShardFailed), exitInfra},
		{errors.New("plain failure"), exitInfra},
	}
	for _, c := range cases {
		if got := reportRunError(report, c.err); got != c.want {
			t.Errorf("reportRunError(%v) = %d, want %d", c.err, got, c.want)
		}
	}
	// A nil report must not panic the crash path.
	if got := reportRunError(nil, mtracecheck.ErrCrash); got != exitFinding {
		t.Errorf("nil-report crash exit %d, want %d", got, exitFinding)
	}
}

// TestRunCheckOnly exercises the host side end to end: signatures written
// by the device side must check clean (exit 0), and a missing file is an
// infrastructure error.
func TestRunCheckOnly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sigs.bin")
	cfg := mtracecheck.TestConfig{Threads: 2, OpsPerThread: 20, Words: 4, Seed: 1}
	opts := mtracecheck.Options{Iterations: 50, Seed: 2}
	p, err := checkProgram("", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dumpSignatures(path, p, opts); err != nil {
		t.Fatal(err)
	}
	opts.Platform = mtracecheck.PlatformX86()
	if code := runCheckOnly(path, p, opts, false); code != exitPass {
		t.Errorf("clean signatures: exit %d, want %d", code, exitPass)
	}
	if code := runCheckOnly(filepath.Join(dir, "missing.bin"), p, opts, false); code != exitInfra {
		t.Errorf("missing file: exit %d, want %d", code, exitInfra)
	}
	// Provenance mismatch: a different seed must be rejected before checking.
	opts.Seed = 99
	if code := runCheckOnly(path, p, opts, false); code != exitInfra {
		t.Errorf("mismatched seed: exit %d, want %d", code, exitInfra)
	}
}

func TestCheckProgramLoadsOrGenerates(t *testing.T) {
	cfg := mtracecheck.TestConfig{Threads: 2, OpsPerThread: 10, Words: 4, Seed: 3}
	generated, err := checkProgram("", cfg)
	if err != nil || generated == nil {
		t.Fatalf("generate path: %v", err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.txt")
	if err := saveProgram(path, cfg); err != nil {
		t.Fatal(err)
	}
	loaded, err := checkProgram(path, cfg)
	if err != nil {
		t.Fatalf("load path: %v", err)
	}
	if loaded.NumOps() != generated.NumOps() {
		t.Errorf("loaded program has %d ops, generated %d", loaded.NumOps(), generated.NumOps())
	}
	if _, err := checkProgram(filepath.Join(dir, "missing.txt"), cfg); err == nil {
		t.Error("missing program file accepted")
	}
}

// TestPrintCheckersMatchesRegistry pins -list-checkers to the backend
// registry: one backend per line, in the registry's sorted order, nothing
// hand-maintained in between.
func TestPrintCheckersMatchesRegistry(t *testing.T) {
	var sb strings.Builder
	printCheckers(&sb)
	want := strings.Join(check.Backends(), "\n") + "\n"
	if sb.String() != want {
		t.Errorf("printCheckers output:\n%qwant:\n%q", sb.String(), want)
	}
}

// TestRunTraceCheck pins the external-trace mode's exit-code contract over
// the golden traces: a model-consistent trace passes (0), a violating one
// is a finding (1), and configuration trouble — missing file, malformed
// trace, unknown model — is infrastructure (2). Every checker backend must
// produce the same verdicts.
func TestRunTraceCheck(t *testing.T) {
	golden := filepath.Join("..", "..", "internal", "trace", "testdata")
	cases := []struct {
		file, model string
		want        int
	}{
		{"sc_valid.trace", "sc", exitPass},
		{"sc_violation.trace", "sc", exitFinding},
		{"tso_valid.trace", "tso", exitPass},
		{"tso_violation.trace", "tso", exitFinding},
		{"pso_valid.trace", "pso", exitPass},
		{"pso_violation.trace", "pso", exitFinding},
		{"rmo_valid.trace", "rmo", exitPass},
		{"rmo_violation.trace", "rmo", exitFinding},
	}
	for _, name := range mtracecheck.CheckerNames() {
		ck, err := parseChecker(name)
		if err != nil {
			t.Fatal(err)
		}
		opts := mtracecheck.Options{Checker: ck}
		for _, c := range cases {
			got := runTraceCheck(filepath.Join(golden, c.file), c.model, opts, true)
			if got != c.want {
				t.Errorf("%s under %s (%s): exit %d, want %d", c.file, c.model, name, got, c.want)
			}
		}
	}

	opts := mtracecheck.Options{}
	if got := runTraceCheck(filepath.Join(golden, "missing.trace"), "sc", opts, false); got != exitInfra {
		t.Errorf("missing file: exit %d, want %d", got, exitInfra)
	}
	if got := runTraceCheck(filepath.Join(golden, "sc_valid.trace"), "ptx", opts, false); got != exitInfra {
		t.Errorf("unknown model: exit %d, want %d", got, exitInfra)
	}
	bad := filepath.Join(t.TempDir(), "bad.trace")
	if err := os.WriteFile(bad, []byte("0: M[zz] := 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := runTraceCheck(bad, "sc", opts, false); got != exitInfra {
		t.Errorf("malformed trace: exit %d, want %d", got, exitInfra)
	}
}

func TestUnknownBugErrorListsValidValues(t *testing.T) {
	_, err := platform("x86", "bogus")
	if err == nil {
		t.Fatal("unknown bug accepted")
	}
	for _, valid := range []string{"sm-inv", "lsq-skip", "wb-race"} {
		if !strings.Contains(err.Error(), valid) {
			t.Errorf("error %q does not list %q", err, valid)
		}
	}
}
