// Command mtracecheck-worker is the distributed campaign execution client:
// it polls an mtracecheck-server for chunk leases, executes them on a
// locally rebuilt campaign, heartbeats while executing, and uploads the
// results.
//
// Usage:
//
//	mtracecheck-worker -server http://127.0.0.1:7077
//	mtracecheck-worker -server http://host:7077 -exit-when-idle
//
// Because chunk results are a pure function of (program, options, chunk
// index), any number of workers — started and killed at any time — produce
// the same campaign report. The -fault-wire-* flags deliberately corrupt,
// drop, or delay this worker's uploads to exercise the server's
// validation, lease-expiry, and quarantine machinery.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mtracecheck/internal/dist"
	"mtracecheck/internal/fault"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		server  = flag.String("server", "http://127.0.0.1:7077", "server base URL")
		id      = flag.String("id", "", "worker ID (default hostname-pid)")
		poll    = flag.Duration("poll", 100*time.Millisecond, "idle wait between lease attempts")
		idle    = flag.Bool("exit-when-idle", false, "exit 0 when the server has no undone work instead of polling forever")
		startup = flag.Duration("startup-timeout", 0, "how long to retry before the server first answers (0 = 60s); fleets may start in any order")
		verbose = flag.Bool("v", false, "log worker operations to stderr")

		fwCorrupt  = flag.Float64("fault-wire-corrupt", 0, "injected fault rate: flip one bit in an upload payload")
		fwDrop     = flag.Float64("fault-wire-drop", 0, "injected fault rate: silently drop an upload (lease expires)")
		fwDelay    = flag.Float64("fault-wire-delay", 0, "injected fault rate: delay an upload")
		fwDelayFor = flag.Duration("fault-wire-delay-for", 0, "injected upload delay duration (0 = 250ms)")
		fwSeed     = flag.Int64("wire-seed", 1, "seed for deterministic wire-fault injection")
	)
	flag.Parse()

	if *id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w := &dist.Worker{
		Server:         *server,
		ID:             *id,
		Poll:           *poll,
		ExitWhenIdle:   *idle,
		StartupTimeout: *startup,
	}
	if *verbose {
		w.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	wc := fault.WireConfig{
		Seed: *fwSeed, Corrupt: *fwCorrupt, Drop: *fwDrop,
		Delay: *fwDelay, DelayFor: *fwDelayFor,
	}
	if wc.Enabled() {
		inj, err := fault.NewWireInjector(wc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mtracecheck-worker:", err)
			return 2
		}
		w.Wire = inj
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := w.Run(ctx)
	switch {
	case err == nil, errors.Is(err, context.Canceled):
		return 0
	case errors.Is(err, dist.ErrWorkerQuarantined):
		fmt.Fprintf(os.Stderr, "mtracecheck-worker: %s: %v\n", *id, err)
		return 3
	default:
		fmt.Fprintf(os.Stderr, "mtracecheck-worker: %s: %v\n", *id, err)
		return 2
	}
}
