package mtracecheck

import (
	"os"
	"path/filepath"
	"testing"

	"mtracecheck/internal/instrument"
	"mtracecheck/internal/mem"
	"mtracecheck/internal/prog"
	"mtracecheck/internal/sig"
	"mtracecheck/internal/sim"
	"mtracecheck/internal/testgen"
)

// corpusTestProgram is a small deterministic program reused across the
// corpus pipeline tests so every run shares one corpus key.
func corpusTestProgram(t *testing.T) *Program {
	t.Helper()
	p, err := testgen.Generate(TestConfig{Threads: 2, OpsPerThread: 40, Words: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// runWithCorpus opens (or reopens) the corpus at path and runs one
// campaign against it, returning the report and the metrics snapshot.
func runWithCorpus(t *testing.T, p *Program, path string, opts Options) (*Report, MetricsSnapshot) {
	t.Helper()
	m := NewMetrics()
	opts.Observer = m
	if path != "" {
		store, err := OpenCorpus(path)
		if err != nil {
			t.Fatalf("OpenCorpus: %v", err)
		}
		opts.Corpus = store
	}
	report, err := RunProgram(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return report, m.Snapshot()
}

// requireSameVerdicts asserts two reports agree on everything the corpus
// must not change: the bit-identity contract between cold, warm, and
// corpus-less runs.
func requireSameVerdicts(t *testing.T, label string, a, b *Report) {
	t.Helper()
	if a.UniqueSignatures != b.UniqueSignatures || a.SignatureBytes != b.SignatureBytes ||
		a.Iterations != b.Iterations || a.TotalCycles != b.TotalCycles || a.Squashes != b.Squashes {
		t.Fatalf("%s: counters differ: uniques %d/%d bytes %d/%d iters %d/%d cycles %d/%d squashes %d/%d",
			label, a.UniqueSignatures, b.UniqueSignatures, a.SignatureBytes, b.SignatureBytes,
			a.Iterations, b.Iterations, a.TotalCycles, b.TotalCycles, a.Squashes, b.Squashes)
	}
	if len(a.Violations) != len(b.Violations) || len(a.AssertionFailures) != len(b.AssertionFailures) ||
		len(a.Quarantined) != len(b.Quarantined) {
		t.Fatalf("%s: findings differ: %d/%d violations, %d/%d asserts, %d/%d quarantined",
			label, len(a.Violations), len(b.Violations),
			len(a.AssertionFailures), len(b.AssertionFailures),
			len(a.Quarantined), len(b.Quarantined))
	}
	for i := range a.Violations {
		if !a.Violations[i].Sig.Equal(b.Violations[i].Sig) {
			t.Fatalf("%s: violation %d flags a different signature", label, i)
		}
	}
}

// TestCorpusWarmMatchesCold is the tentpole acceptance property: a warm
// rerun against the corpus the cold run grew reproduces the corpus-less
// report bit-identically while decoding and checking zero graphs.
func TestCorpusWarmMatchesCold(t *testing.T) {
	p := corpusTestProgram(t)
	path := filepath.Join(t.TempDir(), "corpus.mtc")
	opts := Options{Iterations: 150, Seed: 9}

	base, _ := runWithCorpus(t, p, "", opts)
	cold, coldSnap := runWithCorpus(t, p, path, opts)
	warm, warmSnap := runWithCorpus(t, p, path, opts)

	requireSameVerdicts(t, "cold vs corpus-less", cold, base)
	requireSameVerdicts(t, "warm vs corpus-less", warm, base)

	if !cold.CorpusConsulted || cold.CorpusHits != 0 || cold.CorpusAppended != cold.UniqueSignatures {
		t.Errorf("cold: consulted=%v hits=%d appended=%d, want true/0/%d",
			cold.CorpusConsulted, cold.CorpusHits, cold.CorpusAppended, cold.UniqueSignatures)
	}
	if !warm.CorpusConsulted || warm.CorpusHits != warm.UniqueSignatures || warm.CorpusAppended != 0 {
		t.Errorf("warm: consulted=%v hits=%d appended=%d, want true/%d/0",
			warm.CorpusConsulted, warm.CorpusHits, warm.CorpusAppended, warm.UniqueSignatures)
	}
	// Zero decode+check on the warm run — the perf claim, asserted via the
	// same counters the Prometheus output exports.
	if warmSnap.Totals.Graphs != 0 || warmSnap.Totals.Decoded != 0 {
		t.Errorf("warm run still worked: %d graphs checked, %d decoded",
			warmSnap.Totals.Graphs, warmSnap.Totals.Decoded)
	}
	if warmSnap.Totals.CorpusHits != int64(warm.UniqueSignatures) || warmSnap.Totals.CorpusMisses != 0 {
		t.Errorf("warm corpus counters: hits=%d misses=%d, want %d/0",
			warmSnap.Totals.CorpusHits, warmSnap.Totals.CorpusMisses, warm.UniqueSignatures)
	}
	if coldSnap.Totals.Graphs != int64(cold.UniqueSignatures) ||
		coldSnap.Totals.CorpusAppends != int64(cold.UniqueSignatures) {
		t.Errorf("cold corpus counters: graphs=%d appends=%d, want %d",
			coldSnap.Totals.Graphs, coldSnap.Totals.CorpusAppends, cold.UniqueSignatures)
	}
	if warm.CheckStats != nil && warm.CheckStats.Total != 0 {
		t.Errorf("warm CheckStats.Total = %d, want 0", warm.CheckStats.Total)
	}
}

// TestCorpusWarmWorkerInvariant: the warm fast path partitions at the
// sorted-merge barrier, so the report and the corpus counters cannot
// depend on the worker count.
func TestCorpusWarmWorkerInvariant(t *testing.T) {
	p := corpusTestProgram(t)
	path := filepath.Join(t.TempDir(), "corpus.mtc")
	opts := Options{Iterations: 150, Seed: 9}
	runWithCorpus(t, p, path, opts) // grow the corpus

	opts.Workers = 1
	w1, s1 := runWithCorpus(t, p, path, opts)
	opts.Workers = 4
	w4, s4 := runWithCorpus(t, p, path, opts)
	requireSameVerdicts(t, "workers 1 vs 4", w1, w4)
	if w1.CorpusHits != w4.CorpusHits || w1.CorpusAppended != w4.CorpusAppended {
		t.Errorf("corpus accounting varies with workers: hits %d/%d appended %d/%d",
			w1.CorpusHits, w4.CorpusHits, w1.CorpusAppended, w4.CorpusAppended)
	}
	if s1.Totals.CorpusHits != s4.Totals.CorpusHits || s1.Totals.Graphs != s4.Totals.Graphs {
		t.Errorf("corpus metrics vary with workers: hits %d/%d graphs %d/%d",
			s1.Totals.CorpusHits, s4.Totals.CorpusHits, s1.Totals.Graphs, s4.Totals.Graphs)
	}
}

// TestCorpusViolationsNeverCached: a buggy platform's violating
// signatures must not enter the corpus, and a warm rerun must rediscover
// every violation rather than skipping it as known good.
func TestCorpusViolationsNeverCached(t *testing.T) {
	b := prog.NewBuilder("hammer", 1, prog.DefaultLayout())
	b.Thread()
	for i := 0; i < 20; i++ {
		b.Store(0)
	}
	b.Thread()
	for i := 0; i < 20; i++ {
		b.Load(0)
	}
	hammer := b.MustBuild()
	plat := PlatformGem5(mem.Bugs{}, sim.Bugs{LQSquashSkip: true})
	path := filepath.Join(t.TempDir(), "corpus.mtc")
	opts := Options{Platform: plat, Iterations: 200, Seed: 11}

	cold, _ := runWithCorpus(t, hammer, path, opts)
	if !cold.Failed() {
		t.Fatal("buggy platform not detected; test needs a failing campaign")
	}
	if cold.CorpusAppended >= cold.UniqueSignatures {
		t.Errorf("appended %d of %d uniques despite %d violations",
			cold.CorpusAppended, cold.UniqueSignatures, len(cold.Violations))
	}
	store, err := OpenCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	key := CorpusKey{ProgHash: progHash(hammer), Platform: plat.Name, MCM: plat.Model.String()}
	for i, v := range cold.Violations {
		if store.Contains(key, v.Sig.AppendBinary(nil)) {
			t.Fatalf("violation %d's signature was cached as known good", i)
		}
	}
	warm, _ := runWithCorpus(t, hammer, path, opts)
	requireSameVerdicts(t, "buggy warm vs cold", warm, cold)
	if !warm.Failed() || len(warm.Violations) != len(cold.Violations) {
		t.Fatalf("warm rerun lost violations: %d, cold had %d",
			len(warm.Violations), len(cold.Violations))
	}
}

// TestCorpusOfflineCheckPath: the -sigs-in offline path (CheckSignatures)
// consults the same corpus, so re-auditing a saved signature set against
// a warm corpus checks nothing.
func TestCorpusOfflineCheckPath(t *testing.T) {
	p := corpusTestProgram(t)
	opts := Options{Iterations: 150, Seed: 9}
	uniques, err := CollectSignatures(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.mtc")

	check := func() *Report {
		store, err := OpenCorpus(path)
		if err != nil {
			t.Fatal(err)
		}
		o := opts
		o.Corpus = store
		report, err := CheckSignatures(p, uniques, o)
		if err != nil {
			t.Fatal(err)
		}
		return report
	}
	cold := check()
	if cold.CorpusAppended != len(uniques) {
		t.Fatalf("offline cold appended %d, want %d", cold.CorpusAppended, len(uniques))
	}
	warm := check()
	if warm.CorpusHits != len(uniques) || warm.CorpusAppended != 0 {
		t.Errorf("offline warm: hits=%d appended=%d, want %d/0",
			warm.CorpusHits, warm.CorpusAppended, len(uniques))
	}
	if warm.CheckStats != nil && warm.CheckStats.Total != 0 {
		t.Errorf("offline warm checked %d graphs, want 0", warm.CheckStats.Total)
	}
	if len(cold.Violations) != len(warm.Violations) {
		t.Errorf("offline verdicts differ: %d vs %d violations",
			len(cold.Violations), len(warm.Violations))
	}
}

// TestCorpusCorruptFileRunsCold: a campaign handed an unreadable corpus
// runs cold with correct verdicts, and the store rebuilds (quarantining
// the corrupt original) when the campaign flushes.
func TestCorpusCorruptFileRunsCold(t *testing.T) {
	p := corpusTestProgram(t)
	path := filepath.Join(t.TempDir(), "corpus.mtc")
	opts := Options{Iterations: 150, Seed: 9}
	base, _ := runWithCorpus(t, p, "", opts)

	if err := os.WriteFile(path, []byte("not a corpus at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	store, err := OpenCorpus(path)
	if err == nil {
		t.Fatal("corrupt corpus opened without error")
	}
	o := opts
	o.Observer = NewMetrics()
	o.Corpus = store
	report, err := RunProgram(p, o)
	if err != nil {
		t.Fatal(err)
	}
	requireSameVerdicts(t, "corrupt-corpus vs corpus-less", report, base)
	if report.CorpusHits != 0 || report.CorpusAppended != report.UniqueSignatures {
		t.Errorf("corrupt store: hits=%d appended=%d, want 0/%d",
			report.CorpusHits, report.CorpusAppended, report.UniqueSignatures)
	}
	if _, err := os.Stat(path + ".quarantined"); err != nil {
		t.Errorf("corrupt original not quarantined: %v", err)
	}
	re, err := OpenCorpus(path)
	if err != nil {
		t.Fatalf("rebuilt corpus unreadable: %v", err)
	}
	if re.Total() != report.UniqueSignatures {
		t.Errorf("rebuilt corpus holds %d signatures, want %d", re.Total(), report.UniqueSignatures)
	}
}

// TestCorpusWidthMismatchIgnored: a corpus section whose recorded width
// contradicts the campaign's signature layout is refused up front — the
// run degrades cold and says so, rather than mixing incompatible keys.
func TestCorpusWidthMismatchIgnored(t *testing.T) {
	p := corpusTestProgram(t)
	plat := PlatformX86()
	meta, err := instrument.Analyze(p, plat.RegWidthBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.mtc")
	store, err := OpenCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	key := CorpusKey{ProgHash: progHash(p), Platform: plat.Name, MCM: plat.Model.String()}
	wrong := make([]uint64, meta.TotalWords()+3)
	store.Add(key, sig.New(wrong), 1)
	if _, err := store.Flush(); err != nil {
		t.Fatal(err)
	}

	opts := Options{Platform: plat, Iterations: 150, Seed: 9}
	base, _ := runWithCorpus(t, p, "", opts)
	report, snap := runWithCorpus(t, p, path, opts)
	requireSameVerdicts(t, "width-mismatch vs corpus-less", report, base)
	if report.CorpusIgnored == nil || report.CorpusConsulted {
		t.Errorf("mismatched corpus not refused: ignored=%v consulted=%v",
			report.CorpusIgnored, report.CorpusConsulted)
	}
	if report.CorpusHits != 0 || report.CorpusAppended != 0 {
		t.Errorf("refused corpus still used: hits=%d appended=%d",
			report.CorpusHits, report.CorpusAppended)
	}
	if snap.Totals.CorpusIgnored != 1 {
		t.Errorf("CorpusIgnored metric = %d, want 1", snap.Totals.CorpusIgnored)
	}
}

// TestCorpusGates: modes that change what a signature means are
// incompatible with the corpus and must be refused at construction.
func TestCorpusGates(t *testing.T) {
	p := corpusTestProgram(t)
	store, err := OpenCorpus(filepath.Join(t.TempDir(), "corpus.mtc"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCampaign(p, Options{Corpus: store, ObservedWS: true}); err == nil {
		t.Error("ObservedWS + Corpus accepted")
	}
	if _, err := NewCampaign(p, Options{Corpus: store, Pruner: instrument.SkewPruner(p, 4)}); err == nil {
		t.Error("Pruner + Corpus accepted")
	}
	if _, err := NewCampaign(p, Options{Corpus: store}); err != nil {
		t.Errorf("plain corpus campaign refused: %v", err)
	}
}
