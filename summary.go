package mtracecheck

import (
	"fmt"
	"io"
	"slices"
	"strings"
)

// Report summaries shared by the CLIs: cmd/mtracecheck and the distributed
// server print campaign outcomes through these, so a campaign fanned out to
// remote workers summarizes byte-identically to a local one.

// WriteCheckSummary prints the selected backend's effort line — each
// backend populates different Result counters, so the line names the
// backend and shows the counters it actually filled.
func WriteCheckSummary(w io.Writer, report *Report, checker Checker) {
	cs := report.CheckStats
	if cs == nil {
		return
	}
	switch checker {
	case CheckerVectorClock:
		fmt.Fprintf(w, "vector-clock checking: %d graphs (%d clock updates)\n",
			cs.Total, cs.ClockUpdates)
	case CheckerConstraints:
		fmt.Fprintf(w, "constraint checking:  %d graphs (%d propagations)\n",
			cs.Total, cs.Propagations)
	case CheckerConventional:
		fmt.Fprintf(w, "conventional checking: %d graphs (%d vertices sorted)\n",
			cs.Total, cs.SortedVertices)
	default:
		// Collective and incremental both maintain an order and record
		// per-graph validation kinds.
		c, nr, inc := cs.Counts()
		if c+nr+inc == 0 {
			return
		}
		fmt.Fprintf(w, "collective checking:  %d complete, %d no-resort, %d incremental (%d vertices sorted)\n",
			c, nr, inc, cs.SortedVertices)
	}
}

// WriteDegradation summarizes fault tolerance outcomes: resumed progress,
// injected faults, quarantined signatures, lost shards, and the signature
// corpus (the corpus lines vary between cold and warm runs by design; the
// verdict lines around them never do).
func WriteDegradation(w io.Writer, report *Report) {
	if report.ResumedIterations > 0 {
		fmt.Fprintf(w, "resumed:              %d iterations from checkpoint\n", report.ResumedIterations)
	}
	if report.CorpusConsulted {
		fmt.Fprintf(w, "signature corpus:     %d known-good hits, %d appended\n",
			report.CorpusHits, report.CorpusAppended)
	}
	if report.CorpusIgnored != nil {
		fmt.Fprintf(w, "signature corpus:     ignored, ran cold (%v)\n", report.CorpusIgnored)
	}
	if n := len(report.InjectedFaults); n > 0 {
		fmt.Fprintf(w, "injected faults:     ")
		// Sorted so the line is stable across runs (map order is not).
		for _, kind := range sortedCountKeys(report.InjectedFaults) {
			fmt.Fprintf(w, " %v=%d", kind, report.InjectedFaults[kind])
		}
		fmt.Fprintln(w)
	}
	if counts := report.QuarantineCounts(); counts != nil {
		fmt.Fprintf(w, "quarantined:          %d signatures (", len(report.Quarantined))
		for i, kind := range sortedCountKeys(counts) {
			if i > 0 {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprintf(w, "%d %v", counts[kind], kind)
		}
		fmt.Fprintln(w, ")")
	}
	if report.Partial() {
		fmt.Fprintf(w, "PARTIAL: %d execution shards lost after retries:\n", len(report.ShardFailures))
		for _, sf := range report.ShardFailures {
			fmt.Fprintf(w, "  iterations [%d,%d): %d executed over %d attempts: %v\n",
				sf.Start, sf.Start+sf.Count, sf.Executed, sf.Attempts, sf.Err)
		}
	}
}

// WriteResultSummary prints the headline stats and PASS/FAIL verdict for a
// completed campaign, returning whether the report is a finding.
func WriteResultSummary(w io.Writer, report *Report, checker Checker) bool {
	fmt.Fprintf(w, "unique interleavings: %d / %d iterations (%.1f%%)\n",
		report.UniqueSignatures, report.Iterations,
		100*float64(report.UniqueSignatures)/float64(report.Iterations))
	fmt.Fprintf(w, "execution signature:  %d bytes\n", report.SignatureBytes)
	fmt.Fprintf(w, "simulated cycles:     %d total\n", report.TotalCycles)
	WriteCheckSummary(w, report, checker)
	WriteDegradation(w, report)
	if report.Failed() {
		fmt.Fprintf(w, "RESULT: FAIL — %d graph violations, %d assertion failures\n",
			len(report.Violations), len(report.AssertionFailures))
		return true
	}
	fmt.Fprintln(w, "RESULT: PASS — all observed interleavings consistent with the model")
	return false
}

// sortedCountKeys returns m's keys sorted by their rendered names.
func sortedCountKeys[K comparable](m map[K]int) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b K) int { return strings.Compare(fmt.Sprint(a), fmt.Sprint(b)) })
	return keys
}
