package mtracecheck

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"mtracecheck/internal/instrument"
	"mtracecheck/internal/mem"
	"mtracecheck/internal/prog"
	"mtracecheck/internal/sim"
	"mtracecheck/internal/testgen"
)

func TestRunCleanPlatformNoViolations(t *testing.T) {
	cfg := TestConfig{Threads: 4, OpsPerThread: 40, Words: 16, Seed: 5}
	for _, mk := range []func() Platform{PlatformX86, PlatformARM} {
		plat := mk()
		report, err := Run(cfg, Options{Platform: plat, Iterations: 150, Seed: 9})
		if err != nil {
			t.Fatalf("%s: %v", plat.Name, err)
		}
		if report.Failed() {
			t.Errorf("%s: clean platform reported violations: %d graph, %d assert",
				plat.Name, len(report.Violations), len(report.AssertionFailures))
		}
		if report.UniqueSignatures < 2 {
			t.Errorf("%s: only %d unique signatures (no non-determinism?)",
				plat.Name, report.UniqueSignatures)
		}
		if report.Iterations != 150 {
			t.Errorf("%s: iterations = %d", plat.Name, report.Iterations)
		}
		if report.SignatureBytes <= 0 || report.TotalCycles <= 0 {
			t.Errorf("%s: empty accounting: %+v", plat.Name, report)
		}
	}
}

func TestCheckersAgree(t *testing.T) {
	cfg := TestConfig{Threads: 2, OpsPerThread: 50, Words: 8, Seed: 2}
	collective, err := Run(cfg, Options{Iterations: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	conventional, err := Run(cfg, Options{Iterations: 200, Seed: 3, Checker: CheckerConventional})
	if err != nil {
		t.Fatal(err)
	}
	if len(collective.Violations) != len(conventional.Violations) {
		t.Errorf("collective %d violations, conventional %d",
			len(collective.Violations), len(conventional.Violations))
	}
	if collective.UniqueSignatures != conventional.UniqueSignatures {
		t.Errorf("unique signatures differ: %d vs %d",
			collective.UniqueSignatures, conventional.UniqueSignatures)
	}
	if collective.CheckStats.SortedVertices >= conventional.CheckStats.SortedVertices {
		t.Errorf("no checking speedup: %d vs %d vertices",
			collective.CheckStats.SortedVertices, conventional.CheckStats.SortedVertices)
	}
}

func TestBuggyPlatformDetected(t *testing.T) {
	// Bug 2 (LSQ squash skip) with a writer/reader hammer on one word:
	// violations must surface either as graph cycles or inline assertion
	// failures.
	b := prog.NewBuilder("hammer", 1, prog.DefaultLayout())
	b.Thread()
	for i := 0; i < 20; i++ {
		b.Store(0)
	}
	b.Thread()
	for i := 0; i < 20; i++ {
		b.Load(0)
	}
	hammer := b.MustBuild()
	plat := PlatformGem5(mem.Bugs{}, sim.Bugs{LQSquashSkip: true})
	report, err := RunProgram(hammer, Options{Platform: plat, Iterations: 200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Failed() {
		t.Error("bug 2 not detected in 200 iterations")
	}
	for _, v := range report.Violations {
		if len(v.Cycle) == 0 {
			t.Error("violation without cycle witness")
		}
	}
	// The same test on the clean platform must pass.
	clean, err := RunProgram(hammer, Options{Platform: PlatformGem5(mem.Bugs{}, sim.Bugs{}),
		Iterations: 200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Failed() {
		t.Error("clean gem5 platform reported violations")
	}
}

func TestBug3SurfacesAsCrash(t *testing.T) {
	cfg := TestConfig{Threads: 7, OpsPerThread: 60, Words: 64, LoadRatio: 0.3, Seed: 3}
	plat := PlatformGem5(mem.Bugs{WBRaceDeadlock: true}, sim.Bugs{})
	_, err := Run(cfg, Options{Platform: plat, Iterations: 60, Seed: 5})
	if !errors.Is(err, ErrCrash) {
		t.Errorf("err = %v, want ErrCrash", err)
	}
}

func TestRunLitmusForbiddenAndAllowed(t *testing.T) {
	for _, l := range LitmusTests() {
		if l.Name != "SB" {
			continue
		}
		// SB under TSO: outcome allowed, should be observed, no violations.
		obs, report, err := RunLitmus(l, Options{Iterations: 400, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		if obs == 0 {
			t.Error("SB outcome never observed under TSO")
		}
		if report.Failed() {
			t.Error("SB under TSO flagged as violation")
		}
	}
}

func TestPaperConfigsPresent(t *testing.T) {
	if got := len(PaperConfigs()); got != 21 {
		t.Errorf("%d paper configs, want 21", got)
	}
	if got := len(Models()); got != 4 {
		t.Errorf("%d models, want 4", got)
	}
	if ModelName(PlatformARM()) != "RMO" || ModelName(PlatformX86()) != "TSO" {
		t.Error("platform model names wrong")
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := TestConfig{Threads: 2, OpsPerThread: 10, Words: 4, Seed: 1}
	report, err := Run(cfg, Options{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if report.Iterations != 5 {
		t.Errorf("iterations = %d", report.Iterations)
	}
	if len(report.Executions) != 0 {
		t.Error("executions kept without KeepExecutions")
	}
}

func TestDeviceHostSplit(t *testing.T) {
	// CollectSignatures (device) → Save → Load → CheckSignatures (host)
	// must agree with the integrated pipeline.
	p := testgen.MustGenerate(TestConfig{Threads: 4, OpsPerThread: 40, Words: 16, Seed: 5})
	opts := Options{Platform: PlatformX86(), Iterations: 120, Seed: 9}
	uniques, err := CollectSignatures(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(uniques) < 2 {
		t.Fatalf("only %d unique signatures", len(uniques))
	}
	var buf bytes.Buffer
	device := &Report{Program: p, Seed: opts.Seed, Platform: opts.Platform.Name}
	if err := SaveSignatures(&buf, device, uniques); err != nil {
		t.Fatal(err)
	}
	loaded, meta, err := LoadSignaturesMeta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta == nil {
		t.Fatal("saved with a report but loaded without provenance")
	}
	if err := ValidateSignatureMeta(meta, p, opts); err != nil {
		t.Fatalf("matching provenance rejected: %v", err)
	}
	res, err := CheckSignatures(p, loaded, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Errorf("clean signatures flagged: %d violations", len(res.Violations))
	}
	integrated, err := RunProgram(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if integrated.UniqueSignatures != len(uniques) {
		t.Errorf("device-side uniques %d, integrated %d", len(uniques), integrated.UniqueSignatures)
	}
}

func TestCheckSignaturesFlagsBuggySet(t *testing.T) {
	b := prog.NewBuilder("hammer", 1, prog.DefaultLayout())
	b.Thread()
	for i := 0; i < 20; i++ {
		b.Store(0)
	}
	b.Thread()
	for i := 0; i < 20; i++ {
		b.Load(0)
	}
	hammer := b.MustBuild()
	plat := BuggyPlatform(BugLSQSkip)
	opts := Options{Platform: plat, Iterations: 200, Seed: 11}
	uniques, err := CollectSignatures(hammer, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckSignatures(hammer, uniques, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Error("buggy signature set passed host-side checking")
	}
}

func TestWriteViolationDOT(t *testing.T) {
	b := prog.NewBuilder("hammer", 1, prog.DefaultLayout())
	b.Thread()
	for i := 0; i < 20; i++ {
		b.Store(0)
	}
	b.Thread()
	for i := 0; i < 20; i++ {
		b.Load(0)
	}
	hammer := b.MustBuild()
	opts := Options{Platform: BuggyPlatform(BugLSQSkip), Iterations: 200, Seed: 11}
	report, err := RunProgram(hammer, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Violations) == 0 {
		t.Fatal("no violations to render")
	}
	var sb bytes.Buffer
	if err := WriteViolationDOT(&sb, report, report.Violations[0], opts); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "color=red", "cluster_t1"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Observed-ws reports cannot be re-rendered from the signature alone.
	opts.ObservedWS = true
	if err := WriteViolationDOT(&sb, report, report.Violations[0], opts); err == nil {
		t.Error("observed-ws DOT rendering should be refused")
	}
}

func TestObservedWSOption(t *testing.T) {
	cfg := TestConfig{Threads: 4, OpsPerThread: 40, Words: 16, Seed: 5}
	report, err := Run(cfg, Options{Iterations: 100, Seed: 9, ObservedWS: true})
	if err != nil {
		t.Fatal(err)
	}
	if report.Failed() {
		t.Error("clean platform flagged under observed ws")
	}
}

func TestIncrementalCheckerOption(t *testing.T) {
	cfg := TestConfig{Threads: 2, OpsPerThread: 50, Words: 8, Seed: 2}
	inc, err := Run(cfg, Options{Iterations: 200, Seed: 3, Checker: CheckerIncremental})
	if err != nil {
		t.Fatal(err)
	}
	conv, err := Run(cfg, Options{Iterations: 200, Seed: 3, Checker: CheckerConventional})
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.Violations) != len(conv.Violations) {
		t.Errorf("incremental %d violations, conventional %d",
			len(inc.Violations), len(conv.Violations))
	}
	if inc.CheckStats.SortedVertices >= conv.CheckStats.SortedVertices {
		t.Errorf("PK moved %d vertices, baseline sorted %d",
			inc.CheckStats.SortedVertices, conv.CheckStats.SortedVertices)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(TestConfig{}, Options{Iterations: 1}); err == nil {
		t.Error("empty config accepted")
	}
	p := testgen.MustGenerate(TestConfig{Threads: 7, OpsPerThread: 5, Words: 2, Seed: 1})
	if _, err := RunProgram(p, Options{Platform: PlatformX86(), Iterations: 1}); err == nil {
		t.Error("7 threads on the 4-core platform accepted")
	}
}

func TestPrunerOptionWiredThrough(t *testing.T) {
	cfg := TestConfig{Threads: 2, OpsPerThread: 30, Words: 4, Seed: 6}
	p := testgen.MustGenerate(cfg)
	// An absurdly tight pruner turns almost every iteration into an inline
	// assertion failure, proving the option reaches the analysis.
	report, err := RunProgram(p, Options{
		Iterations: 40, Seed: 7,
		Pruner: instrument.SkewPruner(p, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.AssertionFailures) == 0 {
		t.Error("tight pruner produced no assertion failures")
	}
}

// TestShardedPipelineMatchesSerial: the Workers option must not change any
// result — execution shards skip ahead within the same seed stream, so
// Workers: N and Workers: 1 see identical iterations, signatures, and
// verdicts. Only the collective checker's effort accounting may grow by the
// per-shard boundary overhead (one complete sort per shard, plus one per
// cyclic graph delaying a shard's first valid base order).
func TestShardedPipelineMatchesSerial(t *testing.T) {
	hammer := func() *Program {
		b := prog.NewBuilder("hammer", 1, prog.DefaultLayout())
		b.Thread()
		for i := 0; i < 20; i++ {
			b.Store(0)
		}
		b.Thread()
		for i := 0; i < 20; i++ {
			b.Load(0)
		}
		return b.MustBuild()
	}
	cases := []struct {
		name string
		prog *Program
		plat Platform
	}{
		{"clean-x86", testgen.MustGenerate(TestConfig{Threads: 4, OpsPerThread: 40, Words: 8, Seed: 5}), PlatformX86()},
		{"bug-lsq-skip", hammer(), BuggyPlatform(BugLSQSkip)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			opts := Options{Platform: c.plat, Iterations: 200, Seed: 11, KeepExecutions: true}
			opts.Workers = 1
			serial, err := RunProgram(c.prog, opts)
			if err != nil {
				t.Fatal(err)
			}
			if c.name == "bug-lsq-skip" && len(serial.Violations) == 0 {
				t.Fatal("buggy case produced no violations to compare")
			}
			for _, workers := range []int{2, 3, 4, 7} {
				opts.Workers = workers
				sharded, err := RunProgram(c.prog, opts)
				if err != nil {
					t.Fatal(err)
				}
				if sharded.Iterations != serial.Iterations ||
					sharded.TotalCycles != serial.TotalCycles ||
					sharded.Squashes != serial.Squashes {
					t.Fatalf("workers %d: execution stats diverge: iters %d/%d cycles %d/%d squashes %d/%d",
						workers, sharded.Iterations, serial.Iterations,
						sharded.TotalCycles, serial.TotalCycles, sharded.Squashes, serial.Squashes)
				}
				if sharded.UniqueSignatures != serial.UniqueSignatures {
					t.Fatalf("workers %d: %d unique signatures, serial %d",
						workers, sharded.UniqueSignatures, serial.UniqueSignatures)
				}
				if len(sharded.AssertionFailures) != len(serial.AssertionFailures) {
					t.Fatalf("workers %d: %d assertion failures, serial %d",
						workers, len(sharded.AssertionFailures), len(serial.AssertionFailures))
				}
				// Shards hold contiguous ascending iteration blocks, so the
				// retained executions must match serial order exactly.
				if len(sharded.Executions) != len(serial.Executions) {
					t.Fatalf("workers %d: %d executions, serial %d",
						workers, len(sharded.Executions), len(serial.Executions))
				}
				for i := range serial.Executions {
					if sharded.Executions[i].Cycles != serial.Executions[i].Cycles {
						t.Fatalf("workers %d: execution %d cycles %d, serial %d",
							workers, i, sharded.Executions[i].Cycles, serial.Executions[i].Cycles)
					}
					for id, v := range serial.Executions[i].LoadValues {
						if sharded.Executions[i].LoadValues[id] != v {
							t.Fatalf("workers %d: execution %d load %d differs", workers, i, id)
						}
					}
				}
				if len(sharded.Violations) != len(serial.Violations) {
					t.Fatalf("workers %d: %d violations, serial %d",
						workers, len(sharded.Violations), len(serial.Violations))
				}
				for i, v := range serial.Violations {
					sv := sharded.Violations[i]
					if sv.Index != v.Index || !sv.Sig.Equal(v.Sig) {
						t.Fatalf("workers %d: violation %d = (%d, %v), serial (%d, %v)",
							workers, i, sv.Index, sv.Sig, v.Index, v.Sig)
					}
					if len(sv.Cycle) != len(v.Cycle) {
						t.Fatalf("workers %d: violation %d cycle lengths differ", workers, i)
					}
					for k := range v.Cycle {
						if sv.Cycle[k] != v.Cycle[k] {
							t.Fatalf("workers %d: violation %d cycle differs", workers, i)
						}
					}
				}
				// SortedVertices modulo shard overhead: one full sort per
				// checking shard, plus window-size drift downstream of each
				// boundary (the boundary's full sort installs a different
				// maintained order than the serial chain had there).
				n := int64(c.prog.NumOps())
				sv, base := sharded.CheckStats.SortedVertices, serial.CheckStats.SortedVertices
				slack := int64(workers+len(serial.Violations))*n + base/4
				if diff := sv - base; diff < -slack || diff > slack {
					t.Fatalf("workers %d: SortedVertices %d vs serial %d exceeds slack %d",
						workers, sv, base, slack)
				}
			}
		})
	}
}

// TestCheckerBackendsAgree: every registered checker backend must deliver
// the collective checker's exact violation set — on clean and buggy
// platforms, under fault injection, and at every worker count. This is the
// acceptance gate for adding a backend to the registry.
func TestCheckerBackendsAgree(t *testing.T) {
	hammer := func() *Program {
		b := prog.NewBuilder("hammer", 1, prog.DefaultLayout())
		b.Thread()
		for i := 0; i < 20; i++ {
			b.Store(0)
		}
		b.Thread()
		for i := 0; i < 20; i++ {
			b.Load(0)
		}
		return b.MustBuild()
	}
	scenarios := []struct {
		name string
		prog *Program
		opts Options
	}{
		{"clean", testgen.MustGenerate(TestConfig{Threads: 4, OpsPerThread: 40, Words: 8, Seed: 5}),
			Options{Platform: PlatformX86(), Iterations: 150, Seed: 11}},
		{"bug-lsq-skip", hammer(),
			Options{Platform: BuggyPlatform(BugLSQSkip), Iterations: 200, Seed: 11}},
		{"faulted", testgen.MustGenerate(TestConfig{Threads: 4, OpsPerThread: 40, Words: 8, Seed: 5}),
			Options{Platform: PlatformX86(), Iterations: 150, Seed: 11, ShardRetries: 3,
				Fault: FaultConfig{Seed: 3, BitFlip: 0.2, Truncate: 0.1, ShardPanic: 0.4}}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			base := sc.opts
			base.Workers = 1
			ref, err := RunProgram(sc.prog, base)
			if err != nil {
				t.Fatal(err)
			}
			if sc.name == "bug-lsq-skip" && len(ref.Violations) == 0 {
				t.Fatal("buggy case produced no violations to compare")
			}
			for _, name := range CheckerNames() {
				checker, err := ParseChecker(name)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 3} {
					opts := sc.opts
					opts.Checker = checker
					opts.Workers = workers
					got, err := RunProgram(sc.prog, opts)
					if err != nil {
						t.Fatalf("%s workers=%d: %v", name, workers, err)
					}
					if len(got.Violations) != len(ref.Violations) {
						t.Fatalf("%s workers=%d: %d violations, collective %d",
							name, workers, len(got.Violations), len(ref.Violations))
					}
					for i, v := range ref.Violations {
						gv := got.Violations[i]
						if gv.Index != v.Index || !gv.Sig.Equal(v.Sig) {
							t.Fatalf("%s workers=%d: violation %d = (%d, %v), collective (%d, %v)",
								name, workers, i, gv.Index, gv.Sig, v.Index, v.Sig)
						}
						if len(gv.Cycle) == 0 {
							t.Fatalf("%s workers=%d: violation %d has no cycle witness",
								name, workers, i)
						}
					}
				}
			}
		})
	}
}

// TestRunContextCancelledPerChecker: a cancelled campaign must surface
// context.Canceled for every checker backend instead of a report.
func TestRunContextCancelledPerChecker(t *testing.T) {
	cfg := TestConfig{Threads: 2, OpsPerThread: 30, Words: 8, Seed: 2}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range CheckerNames() {
		checker, err := ParseChecker(name)
		if err != nil {
			t.Fatal(err)
		}
		// A partial report may accompany the error (the CLI renders it);
		// the error itself must be the cancellation.
		if _, err := RunContext(ctx, cfg, Options{Iterations: 100, Seed: 3, Checker: checker}); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestCollectSignaturesWorkerInvariant: the device side of the split must
// produce the identical signature set for every worker count, and agree
// with the integrated pipeline.
func TestCollectSignaturesWorkerInvariant(t *testing.T) {
	p := testgen.MustGenerate(TestConfig{Threads: 4, OpsPerThread: 40, Words: 16, Seed: 5})
	opts := Options{Platform: PlatformX86(), Iterations: 120, Seed: 9, Workers: 1}
	serial, err := CollectSignatures(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 5
	sharded, err := CollectSignatures(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sharded) != len(serial) {
		t.Fatalf("workers 5: %d uniques, serial %d", len(sharded), len(serial))
	}
	for i := range serial {
		if !sharded[i].Sig.Equal(serial[i].Sig) || sharded[i].Count != serial[i].Count {
			t.Fatalf("unique %d: got %v x%d, want %v x%d", i,
				sharded[i].Sig, sharded[i].Count, serial[i].Sig, serial[i].Count)
		}
	}
}

// TestRunLitmusHonorsKeepExecutions: the executions retained internally for
// outcome counting must be released when the caller did not ask for them.
func TestRunLitmusHonorsKeepExecutions(t *testing.T) {
	var sb Litmus
	for _, l := range LitmusTests() {
		if l.Name == "SB" {
			sb = l
		}
	}
	_, report, err := RunLitmus(sb, Options{Iterations: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Executions) != 0 {
		t.Errorf("executions retained without KeepExecutions: %d", len(report.Executions))
	}
	_, report, err = RunLitmus(sb, Options{Iterations: 50, Seed: 3, KeepExecutions: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Executions) != 50 {
		t.Errorf("KeepExecutions retained %d executions, want 50", len(report.Executions))
	}
}
