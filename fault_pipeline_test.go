package mtracecheck

// Fault-tolerance tests: deterministic corruption injection and quarantine,
// shard retry and degradation, cancellation hygiene, and checkpoint/resume
// fidelity. They all lean on one invariant — degraded modes must change
// nothing unless a fault actually strikes, and every fault outcome must be
// reproducible for any worker count.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// faultCfg is the small, fast test program shared by these tests.
var faultCfg = TestConfig{Threads: 3, OpsPerThread: 30, Words: 8, Seed: 1}

// sameOutcome asserts the two reports agree on everything the fault
// machinery promises to preserve: signature population, verdicts, and
// quarantine.
func sameOutcome(t *testing.T, label string, got, want *Report) {
	t.Helper()
	if got.Iterations != want.Iterations {
		t.Errorf("%s: iterations %d, want %d", label, got.Iterations, want.Iterations)
	}
	if got.UniqueSignatures != want.UniqueSignatures {
		t.Errorf("%s: unique signatures %d, want %d", label, got.UniqueSignatures, want.UniqueSignatures)
	}
	if len(got.Violations) != len(want.Violations) {
		t.Fatalf("%s: %d violations, want %d", label, len(got.Violations), len(want.Violations))
	}
	for i := range got.Violations {
		if !got.Violations[i].Sig.Equal(want.Violations[i].Sig) {
			t.Errorf("%s: violation %d signature mismatch", label, i)
		}
	}
	if len(got.Quarantined) != len(want.Quarantined) {
		t.Fatalf("%s: %d quarantined, want %d", label, len(got.Quarantined), len(want.Quarantined))
	}
	for i := range got.Quarantined {
		g, w := got.Quarantined[i], want.Quarantined[i]
		if !g.Sig.Equal(w.Sig) || g.Kind != w.Kind || g.Count != w.Count {
			t.Errorf("%s: quarantine entry %d: %v/%v/%d, want %v/%v/%d",
				label, i, g.Sig, g.Kind, g.Count, w.Sig, w.Kind, w.Count)
		}
	}
}

// TestFaultInjectionWorkerInvariant: corruption is keyed by signature
// content, so the quarantine and the surviving set must be identical for
// every worker count — the same invariance contract the clean pipeline has.
func TestFaultInjectionWorkerInvariant(t *testing.T) {
	base := Options{
		Iterations: 200, Seed: 3,
		Fault: FaultConfig{Seed: 11, BitFlip: 0.05, Truncate: 0.03, Duplicate: 0.03, OutOfRange: 0.03},
	}
	opts := base
	opts.Workers = 1
	serial, err := Run(faultCfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if serial.InjectedFaults == nil {
		t.Fatal("no faults injected at these rates; tune the fault seed")
	}
	if len(serial.Quarantined) == 0 {
		t.Fatal("no signatures quarantined; tune the fault seed")
	}
	for _, workers := range []int{2, 3, 7} {
		opts := base
		opts.Workers = workers
		got, err := Run(faultCfg, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		sameOutcome(t, "workers="+string(rune('0'+workers)), got, serial)
		for k, n := range serial.InjectedFaults {
			if got.InjectedFaults[k] != n {
				t.Errorf("workers=%d: injected %v=%d, want %d", workers, k, got.InjectedFaults[k], n)
			}
		}
	}
}

// TestZeroFaultMatchesBaseline: enabling the tolerance machinery without
// any fault striking must be bit-identical to the plain pipeline — graceful
// vs strict, zero-rate injection, retries armed, all of it.
func TestZeroFaultMatchesBaseline(t *testing.T) {
	baseline, err := Run(faultCfg, Options{Iterations: 150, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]Options{
		"strict":         {Iterations: 150, Seed: 4, Strict: true},
		"zero-rates":     {Iterations: 150, Seed: 4, Fault: FaultConfig{Seed: 99}},
		"retries-armed":  {Iterations: 150, Seed: 4, ShardRetries: 3, ShardTimeout: time.Minute},
		"threshold-set":  {Iterations: 150, Seed: 4, QuarantineThreshold: 0.01},
		"workers-capped": {Iterations: 150, Seed: 4, Workers: 2, ShardRetries: 1},
	}
	for label, opts := range variants {
		got, err := Run(faultCfg, opts)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		sameOutcome(t, label, got, baseline)
		if got.InjectedFaults != nil || got.Partial() || len(got.Quarantined) != 0 {
			t.Errorf("%s: fault machinery left tracks on a clean run: %+v", label, got)
		}
		if got.CheckStats.SortedVertices != baseline.CheckStats.SortedVertices &&
			opts.Workers == 0 {
			t.Errorf("%s: checking effort %d, baseline %d",
				label, got.CheckStats.SortedVertices, baseline.CheckStats.SortedVertices)
		}
	}
}

// TestBitFlipAcceptance is the headline robustness scenario: a clean x86
// run with 1% bit-flip injection completes without aborting, quarantines
// the corrupted signatures, and still reports zero MCM violations.
func TestBitFlipAcceptance(t *testing.T) {
	report, err := Run(faultCfg, Options{
		Platform:   PlatformX86(),
		Iterations: 300, Seed: 1,
		Fault: FaultConfig{Seed: 7, BitFlip: 0.01},
	})
	if err != nil {
		t.Fatalf("run aborted: %v", err)
	}
	if report.InjectedFaults[FaultBitFlip] == 0 {
		t.Fatal("no bit flips injected; tune the fault seed")
	}
	if len(report.Quarantined) == 0 {
		t.Fatal("corrupted signatures were not quarantined")
	}
	if len(report.Violations) != 0 {
		t.Errorf("%d MCM violations on a clean platform", len(report.Violations))
	}
	if counts := report.QuarantineCounts(); counts[QuarantineDecode]+counts[QuarantineEdges] != len(report.Quarantined) {
		t.Errorf("quarantine counts %v do not cover %d entries", counts, len(report.Quarantined))
	}
}

func TestQuarantineThresholdExceeded(t *testing.T) {
	report, err := Run(faultCfg, Options{
		Iterations: 150, Seed: 3,
		QuarantineThreshold: 0.01,
		Fault:               FaultConfig{Seed: 11, OutOfRange: 0.5},
	})
	if !errors.Is(err, ErrQuarantineThreshold) {
		t.Fatalf("err = %v, want ErrQuarantineThreshold", err)
	}
	if report == nil || len(report.Quarantined) == 0 {
		t.Fatal("threshold error without a populated quarantine")
	}
}

func TestStrictAbortsOnCorruption(t *testing.T) {
	report, err := Run(faultCfg, Options{
		Iterations: 150, Seed: 3,
		Strict: true,
		Fault:  FaultConfig{Seed: 11, OutOfRange: 0.5},
	})
	if err == nil {
		t.Fatal("strict mode tolerated corrupted signatures")
	}
	if errors.Is(err, ErrQuarantineThreshold) || errors.Is(err, ErrCrash) {
		t.Fatalf("strict decode failure misclassified: %v", err)
	}
	if report != nil && len(report.Quarantined) != 0 {
		t.Error("strict mode still quarantined")
	}
}

func TestFaultRejectsObservedWS(t *testing.T) {
	_, err := Run(faultCfg, Options{
		Iterations: 10, Seed: 1, ObservedWS: true,
		Fault: FaultConfig{Seed: 1, BitFlip: 0.5},
	})
	if err == nil {
		t.Error("fault injection accepted with observed ws")
	}
	_, err = Run(faultCfg, Options{
		Iterations: 10, Seed: 1, ObservedWS: true,
		Resume: true, CheckpointPath: filepath.Join(t.TempDir(), "x.ckpt"),
	})
	if err == nil {
		t.Error("resume accepted with observed ws")
	}
}

func TestBadFaultConfigRejected(t *testing.T) {
	_, err := Run(faultCfg, Options{
		Iterations: 10, Seed: 1,
		Fault: FaultConfig{BitFlip: 1.5},
	})
	if err == nil {
		t.Error("out-of-range fault rate accepted")
	}
}

// TestShardPanicRetried: transient shard panics with retries enabled must
// leave no trace — the retried campaign equals the clean one exactly.
func TestShardPanicRetried(t *testing.T) {
	clean, err := Run(faultCfg, Options{Iterations: 120, Seed: 5, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		report, err := Run(faultCfg, Options{
			Iterations: 120, Seed: 5, Workers: workers,
			ShardRetries: 2,
			Fault:        FaultConfig{Seed: 8, ShardPanic: 1},
		})
		if err != nil {
			t.Fatalf("workers=%d: retried run failed: %v", workers, err)
		}
		if report.Partial() {
			t.Fatalf("workers=%d: retried run still partial: %+v", workers, report.ShardFailures)
		}
		sameOutcome(t, "panic-retried", report, clean)
	}
}

// TestShardPanicExhaustedRetries: with retries off, every shard dies; the
// graceful pipeline degrades to honestly-labeled partial results while
// strict mode fails the run.
func TestShardPanicExhaustedRetries(t *testing.T) {
	opts := Options{
		Iterations: 120, Seed: 5, Workers: 2,
		ShardRetries: 0,
		Fault:        FaultConfig{Seed: 8, ShardPanic: 1},
	}
	report, err := Run(faultCfg, opts)
	if err != nil {
		t.Fatalf("graceful degradation returned error: %v", err)
	}
	if !report.Partial() || len(report.ShardFailures) != 2 {
		t.Fatalf("%d shard failures, want 2 (partial=%v)", len(report.ShardFailures), report.Partial())
	}
	for _, sf := range report.ShardFailures {
		if !errors.Is(sf.Err, ErrShardFailed) {
			t.Errorf("shard failure error %v does not wrap ErrShardFailed", sf.Err)
		}
		if sf.Attempts != 1 || sf.Count == 0 {
			t.Errorf("shard failure bookkeeping: %+v", sf)
		}
	}
	// The partial report still covers the iterations that did execute.
	if report.Iterations >= 120 || report.UniqueSignatures == 0 {
		t.Errorf("partial accounting: %d iterations, %d uniques",
			report.Iterations, report.UniqueSignatures)
	}

	opts.Strict = true
	_, err = Run(faultCfg, opts)
	if !errors.Is(err, ErrShardFailed) {
		t.Fatalf("strict mode err = %v, want ErrShardFailed", err)
	}
}

// TestShardStallTimeoutRetried: a stalled shard trips its per-attempt
// deadline, is retried, and the campaign completes as if nothing happened.
func TestShardStallTimeoutRetried(t *testing.T) {
	clean, err := Run(faultCfg, Options{Iterations: 80, Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(faultCfg, Options{
		Iterations: 80, Seed: 5, Workers: 2,
		ShardRetries: 1,
		ShardTimeout: 500 * time.Millisecond,
		Fault:        FaultConfig{Seed: 8, ShardStall: 1, StallFor: time.Hour},
	})
	if err != nil {
		t.Fatalf("stalled run failed: %v", err)
	}
	if report.Partial() {
		t.Fatalf("stalled run still partial: %+v", report.ShardFailures)
	}
	sameOutcome(t, "stall-retried", report, clean)
}

// TestCancellationPrompt: a cancelled campaign must return quickly with the
// context's error and leak no pipeline goroutines.
func TestCancellationPrompt(t *testing.T) {
	p, err := NewProgramBuilderFromConfig(faultCfg)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = RunProgramContext(ctx, p, Options{Iterations: 5_000_000, Seed: 2, Workers: 4})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	// All pipeline goroutines must wind down; poll briefly to let the
	// runtime reap them.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after cancellation", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, err := NewProgramBuilderFromConfig(faultCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunProgramContext(ctx, p, Options{Iterations: 1000, Seed: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCheckpointResumeFidelity: an interrupted-then-resumed campaign must
// produce the same report as the uninterrupted one — including under fault
// injection, since corruption is a pure function of the final merged set.
func TestCheckpointResumeFidelity(t *testing.T) {
	cases := map[string]FaultConfig{
		"clean":     {},
		"corrupted": {Seed: 11, BitFlip: 0.05, OutOfRange: 0.03},
	}
	for label, fc := range cases {
		full, err := Run(faultCfg, Options{Iterations: 120, Seed: 6, Fault: fc})
		if err != nil {
			t.Fatalf("%s: uninterrupted run: %v", label, err)
		}
		ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
		// "Interrupted" leg: run only half the iterations, checkpointing as
		// we go, then resume to the full count in a fresh invocation.
		if _, err := Run(faultCfg, Options{
			Iterations: 60, Seed: 6, Fault: fc,
			CheckpointPath: ckpt, CheckpointEvery: 25,
		}); err != nil {
			t.Fatalf("%s: first leg: %v", label, err)
		}
		if _, err := os.Stat(ckpt); err != nil {
			t.Fatalf("%s: no checkpoint written: %v", label, err)
		}
		resumed, err := Run(faultCfg, Options{
			Iterations: 120, Seed: 6, Fault: fc,
			CheckpointPath: ckpt, CheckpointEvery: 25, Resume: true,
		})
		if err != nil {
			t.Fatalf("%s: resumed leg: %v", label, err)
		}
		if resumed.ResumedIterations == 0 {
			t.Fatalf("%s: resume executed from scratch", label)
		}
		sameOutcome(t, label+"/resumed", resumed, full)
		// The resumed run's checkpoint now covers the full campaign: a
		// second resume executes nothing and still reports identically.
		again, err := Run(faultCfg, Options{
			Iterations: 120, Seed: 6, Fault: fc,
			CheckpointPath: ckpt, Resume: true,
		})
		if err != nil {
			t.Fatalf("%s: second resume: %v", label, err)
		}
		if again.ResumedIterations != 120 {
			t.Errorf("%s: second resume restored %d iterations, want 120",
				label, again.ResumedIterations)
		}
		sameOutcome(t, label+"/fully-resumed", again, full)
	}
}

func TestResumeValidation(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "c.ckpt")
	if _, err := Run(faultCfg, Options{Iterations: 40, Seed: 6, CheckpointPath: ckpt, CheckpointEvery: 20}); err != nil {
		t.Fatal(err)
	}
	// Wrong seed.
	if _, err := Run(faultCfg, Options{Iterations: 40, Seed: 7, CheckpointPath: ckpt, Resume: true}); err == nil {
		t.Error("seed mismatch accepted")
	}
	// Wrong program.
	otherCfg := faultCfg
	otherCfg.Seed = 99
	if _, err := Run(otherCfg, Options{Iterations: 40, Seed: 6, CheckpointPath: ckpt, Resume: true}); err == nil {
		t.Error("program mismatch accepted")
	}
	// Checkpoint ahead of the campaign.
	if _, err := Run(faultCfg, Options{Iterations: 20, Seed: 6, CheckpointPath: ckpt, Resume: true}); err == nil {
		t.Error("checkpoint covering more iterations than requested accepted")
	}
	// Resume without a path, and with a missing file.
	if _, err := Run(faultCfg, Options{Iterations: 40, Seed: 6, Resume: true}); err == nil {
		t.Error("resume without CheckpointPath accepted")
	}
	if _, err := Run(faultCfg, Options{Iterations: 40, Seed: 6,
		CheckpointPath: filepath.Join(dir, "missing.ckpt"), Resume: true}); err == nil {
		t.Error("missing checkpoint accepted")
	}
}

// TestCollectSignaturesFaultParity: the device-side entry point applies the
// same corruption as the full pipeline, so a split campaign observes the
// same surviving set.
func TestCollectSignaturesFaultParity(t *testing.T) {
	p, err := NewProgramBuilderFromConfig(faultCfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Iterations: 150, Seed: 3,
		Fault: FaultConfig{Seed: 11, BitFlip: 0.05, Truncate: 0.05},
	}
	uniques, err := CollectSignatures(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	report, err := RunProgram(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(uniques) != report.UniqueSignatures {
		t.Errorf("collected %d uniques, pipeline saw %d", len(uniques), report.UniqueSignatures)
	}
}
