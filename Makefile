GO ?= go
# Per-target budget for the short fuzzing pass; a few seconds each keeps
# `make verify` PR-sized while still exercising the mutated-signature corpus.
FUZZTIME ?= 3s

.PHONY: build vet test race bench bench-smoke fuzz-short verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-checked pass over the sharded pipeline; -short keeps it PR-sized.
race:
	$(GO) test -race -short ./...

# Short native-fuzzing pass over the decoder and the binary readers — the
# attack surface the fault injector corrupts. Go runs one fuzz target per
# invocation, hence the separate lines.
fuzz-short:
	$(GO) test ./internal/instrument -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/instrument -run '^$$' -fuzz '^FuzzEncodeValues$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sig -run '^$$' -fuzz '^FuzzReadSet$$' -fuzztime $(FUZZTIME)

# Tier-1 verification gate (see ROADMAP.md).
verify: build vet test race fuzz-short bench-smoke

# Full benchmark sweep, snapshotted as the next free BENCH_<n>.json
# (name → ns/op, B/op, allocs/op). BENCH_0.json is the committed
# pre-dense-buffer baseline; diff later snapshots against it to catch
# allocation regressions in the hot loop.
bench:
	@n=0; while [ -e BENCH_$$n.json ]; do n=$$((n+1)); done; \
	echo "writing BENCH_$$n.json"; \
	$(GO) test -bench . -benchmem -count 1 -timeout 60m . | $(GO) run ./tools/benchjson > BENCH_$$n.json

# One-iteration benchmark compile-and-run check, cheap enough for verify.
bench-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkSimIterationX86$$' -benchtime 10x .
