GO ?= go

.PHONY: build vet test race bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-checked pass over the sharded pipeline; -short keeps it PR-sized.
race:
	$(GO) test -race -short ./...

# Tier-1 verification gate (see ROADMAP.md).
verify: build vet test race

bench:
	$(GO) test -bench=. -benchtime=1x .
