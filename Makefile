GO ?= go
# Per-target budget for the short fuzzing pass; a few seconds each keeps
# `make verify` PR-sized while still exercising the mutated-signature corpus.
FUZZTIME ?= 3s

.PHONY: build vet test race bench fuzz-short verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-checked pass over the sharded pipeline; -short keeps it PR-sized.
race:
	$(GO) test -race -short ./...

# Short native-fuzzing pass over the decoder and the binary readers — the
# attack surface the fault injector corrupts. Go runs one fuzz target per
# invocation, hence the separate lines.
fuzz-short:
	$(GO) test ./internal/instrument -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/instrument -run '^$$' -fuzz '^FuzzEncodeValues$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sig -run '^$$' -fuzz '^FuzzReadSet$$' -fuzztime $(FUZZTIME)

# Tier-1 verification gate (see ROADMAP.md).
verify: build vet test race fuzz-short

bench:
	$(GO) test -bench=. -benchtime=1x .
