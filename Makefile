GO ?= go
# Per-target budget for the short fuzzing pass; a few seconds each keeps
# `make verify` PR-sized while still exercising the mutated-signature corpus.
FUZZTIME ?= 3s

.PHONY: build vet test race bench bench-smoke bench-diff fuzz-short obs-smoke scaling-smoke diff-check-smoke dist-smoke corpus-smoke trace-smoke sim-alloc-smoke verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-checked pass over the sharded pipeline; -short keeps it PR-sized.
race:
	$(GO) test -race -short ./...

# Short native-fuzzing pass over the decoder and the binary readers — the
# attack surface the fault injector corrupts — plus the checker-backend
# differential (all backends must agree on fuzz-chosen execution sets).
# Go runs one fuzz target per invocation, hence the separate lines.
fuzz-short:
	$(GO) test ./internal/instrument -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/instrument -run '^$$' -fuzz '^FuzzEncodeValues$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sig -run '^$$' -fuzz '^FuzzReadSet$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/check -run '^$$' -fuzz '^FuzzDifferential$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -run '^$$' -fuzz '^FuzzTraceParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dist -run '^$$' -fuzz '^FuzzChunkUpload$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/corpus -run '^$$' -fuzz '^FuzzCorpusLoad$$' -fuzztime $(FUZZTIME)

# Observability smoke: the same campaign run bare and with all three
# observers attached must print a bit-identical report (the observers'
# non-perturbation contract, end to end through the CLI), and the metrics
# and trace artifacts must materialize with real content.
obs-smoke:
	@dir=$$(mktemp -d); trap 'rm -rf $$dir' EXIT; \
	$(GO) run ./cmd/mtracecheck -threads 2 -ops 30 -words 8 -iters 200 -seed 7 > $$dir/bare.txt \
		|| { cat $$dir/bare.txt; exit 1; }; \
	$(GO) run ./cmd/mtracecheck -threads 2 -ops 30 -words 8 -iters 200 -seed 7 \
		-metrics-out $$dir/metrics.prom -trace-out $$dir/trace.json -progress \
		> $$dir/observed.txt 2> $$dir/progress.log \
		|| { cat $$dir/observed.txt $$dir/progress.log; exit 1; }; \
	cmp $$dir/bare.txt $$dir/observed.txt \
		|| { echo "obs-smoke: observed report differs from the bare run"; exit 1; }; \
	grep -q '^mtracecheck_iterations_total 200$$' $$dir/metrics.prom \
		|| { echo "obs-smoke: metrics snapshot missing or wrong"; cat $$dir/metrics.prom; exit 1; }; \
	grep -q '"ph":"X"' $$dir/trace.json && grep -q '\]$$' $$dir/trace.json \
		|| { echo "obs-smoke: trace output missing spans or unterminated"; exit 1; }; \
	grep -q 'obs:' $$dir/progress.log \
		|| { echo "obs-smoke: no progress lines on stderr"; exit 1; }; \
	echo "obs-smoke: OK (bare and observed reports bit-identical)"

# Streaming-scaling smoke: the work-stealing pipeline must produce
# bit-identical artifacts at every worker count. The same campaign runs at
# -workers 1 and -workers 4; the printed report (modulo the
# partition-dependent collective-checking effort line), the signature file,
# and the worker-invariant metrics Totals must compare byte-equal. Effort
# series (shard attempts, sorted vertices, stage seconds, ...) are
# partition- and timing-dependent by design and filtered out.
scaling-smoke:
	@dir=$$(mktemp -d); trap 'rm -rf $$dir' EXIT; \
	for w in 1 4; do \
		mkdir $$dir/$$w; \
		$(GO) run ./cmd/mtracecheck -threads 4 -ops 40 -words 16 -iters 400 -seed 11 -workers $$w \
			-sigs-out $$dir/$$w/sigs -metrics-out $$dir/$$w/metrics > $$dir/$$w/report \
			|| { cat $$dir/$$w/report; exit 1; }; \
		sed -e 's/^collective checking:.*/collective checking:  <effort line normalized>/' \
			-e "s|$$dir/$$w|DIR|g" $$dir/$$w/report > $$dir/$$w/report.norm; \
		grep -Ev 'mtracecheck_(shard_attempts|shard_retries|retried_iterations|sorted_vertices|backward_edges|graphs_by_kind|max_resort_window|stage_seconds|clock_updates|propagations|check_shards)' \
			$$dir/$$w/metrics > $$dir/$$w/totals; \
	done; \
	cmp $$dir/1/report.norm $$dir/4/report.norm \
		|| { echo "scaling-smoke: report differs between -workers 1 and 4"; diff $$dir/1/report.norm $$dir/4/report.norm; exit 1; }; \
	cmp $$dir/1/sigs $$dir/4/sigs \
		|| { echo "scaling-smoke: signature file differs between -workers 1 and 4"; exit 1; }; \
	cmp $$dir/1/totals $$dir/4/totals \
		|| { echo "scaling-smoke: metrics Totals differ between -workers 1 and 4"; diff $$dir/1/totals $$dir/4/totals; exit 1; }; \
	echo "scaling-smoke: OK (report, signatures, metrics Totals bit-identical at workers 1 and 4)"

# Differential checking smoke: collect one signature set, then check it with
# every registered backend (-list-checkers is the source of truth, so a new
# backend joins this gate automatically). All verdicts must be identical;
# only the per-backend effort line ("... checking: ...") may differ and is
# normalized away.
diff-check-smoke:
	@dir=$$(mktemp -d); trap 'rm -rf $$dir' EXIT; \
	$(GO) run ./cmd/mtracecheck -threads 4 -ops 40 -words 16 -iters 400 -seed 11 \
		-dump-prog $$dir/prog -sigs-out $$dir/sigs > /dev/null \
		|| { echo "diff-check-smoke: collection failed"; exit 1; }; \
	for c in $$($(GO) run ./cmd/mtracecheck -list-checkers); do \
		$(GO) run ./cmd/mtracecheck -prog $$dir/prog -iters 400 -seed 11 \
			-sigs-in $$dir/sigs -checker $$c > $$dir/report.$$c \
			|| { cat $$dir/report.$$c; exit 1; }; \
		grep -Ev 'checking:' $$dir/report.$$c > $$dir/verdict.$$c; \
	done; \
	for c in $$($(GO) run ./cmd/mtracecheck -list-checkers); do \
		cmp $$dir/verdict.collective $$dir/verdict.$$c \
			|| { echo "diff-check-smoke: $$c verdict differs from collective"; \
			     diff $$dir/verdict.collective $$dir/verdict.$$c; exit 1; }; \
	done; \
	echo "diff-check-smoke: OK (all backends agree: $$($(GO) run ./cmd/mtracecheck -list-checkers | tr '\n' ' '))"

# External-trace smoke: the committed golden traces drive the -trace front
# door end to end. A violating TSO trace must be a finding (exit 1), a
# valid one must pass (exit 0), and the serial constraints oracle must print
# the same verdict summary as the vectorclock backend — only the per-backend
# effort line ("... checking: ...") may differ and is normalized away, the
# diff-check-smoke convention.
trace-smoke:
	@dir=$$(mktemp -d); trap 'rm -rf $$dir' EXIT; \
	td=internal/trace/testdata; \
	$(GO) build -o $$dir/mtracecheck ./cmd/mtracecheck \
		|| { echo "trace-smoke: build failed"; exit 1; }; \
	$$dir/mtracecheck -trace $$td/tso_violation.trace -mcm tso > $$dir/fail.txt; st=$$?; \
	[ $$st -eq 1 ] || { echo "trace-smoke: violating trace exited $$st, want 1"; cat $$dir/fail.txt; exit 1; }; \
	$$dir/mtracecheck -trace $$td/tso_valid.trace -mcm tso > $$dir/pass.txt; st=$$?; \
	[ $$st -eq 0 ] || { echo "trace-smoke: valid trace exited $$st, want 0"; cat $$dir/pass.txt; exit 1; }; \
	for c in constraints vectorclock; do \
		$$dir/mtracecheck -trace $$td/tso_violation.trace -mcm tso -checker $$c -v > $$dir/report.$$c; st=$$?; \
		[ $$st -eq 1 ] || { echo "trace-smoke: checker $$c exited $$st, want 1"; cat $$dir/report.$$c; exit 1; }; \
		grep -Ev 'checking:' $$dir/report.$$c > $$dir/verdict.$$c; \
	done; \
	cmp $$dir/verdict.constraints $$dir/verdict.vectorclock \
		|| { echo "trace-smoke: constraints and vectorclock verdicts differ"; \
		     diff $$dir/verdict.constraints $$dir/verdict.vectorclock; exit 1; }; \
	echo "trace-smoke: OK (golden TSO traces: finding=1, pass=0, constraints == vectorclock)"

# Distributed-campaign smoke: the same campaign runs in-process and through
# the dist server with three workers — one honest, one killed mid-campaign,
# one corrupting every upload (quarantined server-side). The server must
# exit 0 and its signature file must compare byte-equal to the in-process
# run: worker failures may cost wall-clock, never results.
dist-smoke:
	@dir=$$(mktemp -d); trap 'rm -rf $$dir' EXIT; \
	$(GO) build -o $$dir/mtracecheck ./cmd/mtracecheck; \
	$(GO) build -o $$dir/server ./cmd/mtracecheck-server; \
	$(GO) build -o $$dir/worker ./cmd/mtracecheck-worker; \
	$$dir/mtracecheck -threads 4 -ops 40 -words 16 -iters 1280 -seed 11 -sigs-out $$dir/ref.sigs > /dev/null \
		|| { echo "dist-smoke: reference run failed"; exit 1; }; \
	$$dir/server -oneshot -listen 127.0.0.1:0 -addr-file $$dir/addr -lease-ttl 1s \
		-threads 4 -ops 40 -words 16 -iters 1280 -seed 11 -sigs-out $$dir/dist.sigs \
		> $$dir/report 2> $$dir/server.log & srv=$$!; \
	for i in $$(seq 1 100); do [ -s $$dir/addr ] && break; sleep 0.1; done; \
	[ -s $$dir/addr ] || { echo "dist-smoke: server never bound"; kill $$srv 2>/dev/null; exit 1; }; \
	addr=$$(cat $$dir/addr); \
	$$dir/worker -server http://$$addr -id honest -exit-when-idle & w1=$$!; \
	$$dir/worker -server http://$$addr -id victim & w2=$$!; \
	$$dir/worker -server http://$$addr -id liar -fault-wire-corrupt 1 2> /dev/null & w3=$$!; \
	sleep 0.3; kill -9 $$w2 2>/dev/null; \
	wait $$srv; status=$$?; \
	kill $$w1 $$w3 2>/dev/null; \
	[ $$status -eq 0 ] || { echo "dist-smoke: server exited $$status"; cat $$dir/report $$dir/server.log; exit 1; }; \
	cmp $$dir/ref.sigs $$dir/dist.sigs \
		|| { echo "dist-smoke: distributed signatures differ from the in-process run"; cat $$dir/report; exit 1; }; \
	echo "dist-smoke: OK (signatures bit-identical to in-process despite a killed worker and a corrupting worker)"

# Signature-corpus smoke: the same campaign runs cold (empty corpus) and
# warm (corpus grown by the cold run). The signature files must compare
# byte-equal, the reports must match modulo the corpus/effort lines that
# differ by design, and the warm run must check zero graphs while scoring
# a corpus hit for every unique — the warm-cache perf contract, end to
# end through the CLI.
corpus-smoke:
	@dir=$$(mktemp -d); trap 'rm -rf $$dir' EXIT; \
	for run in cold warm; do \
		$(GO) run ./cmd/mtracecheck -threads 4 -ops 40 -words 16 -iters 400 -seed 11 \
			-corpus $$dir/corpus.mtc -sigs-out $$dir/$$run.sigs -metrics-out $$dir/$$run.metrics \
			> $$dir/$$run.report || { cat $$dir/$$run.report; exit 1; }; \
		grep -Ev 'checking:|signature corpus:' $$dir/$$run.report \
			| sed "s|$$dir/$$run|RUN|g" > $$dir/$$run.verdict; \
	done; \
	cmp $$dir/cold.sigs $$dir/warm.sigs \
		|| { echo "corpus-smoke: signature files differ between cold and warm"; exit 1; }; \
	cmp $$dir/cold.verdict $$dir/warm.verdict \
		|| { echo "corpus-smoke: warm verdict differs from cold"; diff $$dir/cold.verdict $$dir/warm.verdict; exit 1; }; \
	grep -q '^mtracecheck_graphs_checked_total 0$$' $$dir/warm.metrics \
		|| { echo "corpus-smoke: warm run still checked graphs"; grep graphs_checked $$dir/warm.metrics; exit 1; }; \
	grep -q '^mtracecheck_corpus_misses_total 0$$' $$dir/warm.metrics \
		|| { echo "corpus-smoke: warm run missed the corpus"; grep corpus $$dir/warm.metrics; exit 1; }; \
	hits=$$(grep '^mtracecheck_corpus_hits_total ' $$dir/warm.metrics | cut -d' ' -f2); \
	checked=$$(grep '^mtracecheck_graphs_checked_total ' $$dir/cold.metrics | cut -d' ' -f2); \
	[ "$$hits" = "$$checked" ] && [ "$$hits" -gt 0 ] \
		|| { echo "corpus-smoke: warm hits ($$hits) != cold graphs checked ($$checked)"; exit 1; }; \
	echo "corpus-smoke: OK (warm rerun bit-identical with $$hits corpus hits and zero graphs checked)"

# Simulator allocation gate: the alloc-budget tests plus a short
# -benchmem pass over the SimIteration benchmarks. The typed-event engine
# holds the execute loop at zero steady-state allocations; this fails the
# build if allocs/op creeps above the budget.
SIM_ALLOC_BUDGET ?= 50
sim-alloc-smoke:
	@$(GO) test -run 'AllocBudget' -count 1 . || exit 1; \
	out=$$($(GO) test -run '^$$' -bench 'SimIteration' -benchmem -benchtime 2s . ) \
		|| { echo "$$out"; exit 1; }; \
	echo "$$out" | grep 'BenchmarkSimIteration' | while read -r name _ _ _ _ _ allocs _; do \
		[ "$$allocs" -le $(SIM_ALLOC_BUDGET) ] \
			|| { echo "sim-alloc-smoke: $$name at $$allocs allocs/op exceeds budget $(SIM_ALLOC_BUDGET)"; exit 1; }; \
	done || exit 1; \
	echo "sim-alloc-smoke: OK (SimIteration allocs/op within budget $(SIM_ALLOC_BUDGET))"

# Tier-1 verification gate (see ROADMAP.md).
verify: build vet test race fuzz-short bench-smoke sim-alloc-smoke obs-smoke scaling-smoke diff-check-smoke trace-smoke dist-smoke corpus-smoke

# Full benchmark sweep, snapshotted as the next free BENCH_<n>.json
# (name → ns/op, B/op, allocs/op). BENCH_0.json is the committed
# pre-dense-buffer baseline; diff later snapshots against it to catch
# allocation regressions in the hot loop. Each snapshot embeds a campaign
# metrics snapshot ("_metrics" key) from a reference run, so timing shifts
# can be read against the work actually performed.
bench:
	@n=0; while [ -e BENCH_$$n.json ]; do n=$$((n+1)); done; \
	echo "writing BENCH_$$n.json"; \
	m=$$(mktemp); trap 'rm -f '$$m EXIT; \
	$(GO) run ./cmd/mtracecheck -threads 4 -ops 50 -words 64 -iters 2048 -metrics-out $$m > /dev/null; \
	$(GO) test -bench . -benchmem -count 1 -timeout 60m . | $(GO) run ./tools/benchjson -metrics $$m > BENCH_$$n.json

# One-iteration benchmark compile-and-run check, cheap enough for verify.
bench-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkSimIterationX86$$' -benchtime 10x .

# Compare the newest BENCH_<n>.json against a baseline (default the
# committed BENCH_0.json; override with BENCH_BASE=BENCH_2.json).
BENCH_BASE ?= BENCH_0.json
bench-diff:
	@n=0; latest=; while [ -e BENCH_$$n.json ]; do latest=BENCH_$$n.json; n=$$((n+1)); done; \
	[ -n "$$latest" ] || { echo "bench-diff: no BENCH_<n>.json snapshots"; exit 1; }; \
	[ "$$latest" != "$(BENCH_BASE)" ] || { echo "bench-diff: only $(BENCH_BASE) exists; run 'make bench' first"; exit 1; }; \
	echo "comparing $(BENCH_BASE) -> $$latest"; \
	$(GO) run ./tools/benchjson -diff $(BENCH_BASE) $$latest
