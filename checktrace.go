package mtracecheck

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"mtracecheck/internal/check"
	"mtracecheck/internal/graph"
	"mtracecheck/internal/mcm"
	"mtracecheck/internal/sig"
	"mtracecheck/internal/trace"
)

// External-trace checking: the front door for executions this framework's
// simulator did not produce. An Axe-style text trace (see internal/trace)
// records what some memory subsystem — silicon, RTL simulation, another
// simulator — actually did; CheckTrace binds it onto the same constraint
// graphs and checking backends every campaign uses and returns an ordinary
// Report. The simulator is just one producer among many.

type (
	// ExecTrace is one externally observed execution: per-thread memory
	// requests/responses with values. (Named to avoid colliding with the
	// Trace observer, which writes Chrome trace-event output.)
	ExecTrace = trace.Trace
	// TraceOp is one observed operation of an ExecTrace.
	TraceOp = trace.Op
	// TraceBinding is a trace mapped onto the checking machinery — the
	// reconstructed Program, reads-from relation, and the address/thread/
	// line provenance needed to render verdicts in the trace's own terms.
	TraceBinding = trace.Binding
)

// ParseTrace reads an external execution trace in the Axe-style text format
// (see internal/trace for the grammar):
//
//	<tid>: M[<addr>] := <val>     store request
//	<tid>: M[<addr>] == <val>     load response
//	<tid>: sync                   full memory barrier
func ParseTrace(r io.Reader) (*ExecTrace, error) { return trace.Parse(r) }

// FormatTrace writes a trace in the canonical text form ParseTrace accepts.
func FormatTrace(w io.Writer, t *ExecTrace) error { return trace.Format(w, t) }

// TraceModels lists the model names CheckTrace accepts, strongest first, in
// the lowercase spelling the -mcm flag documents (mcm.Parse accepts any
// case plus the x86/weak/arm aliases).
func TraceModels() []string {
	out := make([]string, len(mcm.Models))
	for i, m := range mcm.Models {
		out[i] = strings.ToLower(m.String())
	}
	return out
}

// CheckTraceContext checks one externally observed execution against the
// named memory consistency model ("sc", "tso", "pso", "rmo"; case-
// insensitive, mcm.Parse aliases accepted). The trace is bound onto a
// reconstructed Program plus reads-from relation, its constraint graph is
// built exactly as for a simulated execution — model program-order edges,
// rf, and fr, with store-to-load forwarding assumed on every model weaker
// than SC — and the graph is checked by the backend selected via
// opts.Checker. Of Options, only Checker, Workers, and Observer apply.
//
// The returned Report reads like a one-iteration campaign: a cyclic graph
// appears in Violations with its cycle witness (operation IDs of the bound
// Program; map them back through the Binding), and loads that observed a
// value no store wrote appear in AssertionFailures — such an observation is
// impossible under every model, the trace-mode analogue of the
// instrumentation's inline assertion failures. Failed() covers both. The
// Binding is always returned when binding succeeded, so callers can render
// verdicts in the trace's own addresses and line numbers.
func CheckTraceContext(ctx context.Context, tr *ExecTrace, model string, opts Options) (*Report, *TraceBinding, error) {
	m, err := mcm.Parse(model)
	if err != nil {
		return nil, nil, err
	}
	backend, err := check.ForName(opts.Checker.String())
	if err != nil {
		return nil, nil, fmt.Errorf("mtracecheck: %w", err)
	}
	bind, err := tr.Bind()
	if err != nil {
		return nil, nil, fmt.Errorf("mtracecheck: %w", err)
	}
	builder := graph.NewBuilder(bind.Prog, m, graph.Options{
		// SC is the one model with single-copy store atomicity; everything
		// weaker owns a store buffer and may forward (paper §8).
		Forwarding: m != mcm.SC,
		WS:         graph.WSStatic,
	})
	edges, err := builder.DynamicEdges(bind.RF, nil)
	if err != nil {
		return nil, bind, fmt.Errorf("mtracecheck: %w", err)
	}
	items := []check.Item{{Sig: traceSignature(bind), Edges: edges}}

	// The observer surface is the campaign's: a trace check is a
	// one-iteration campaign on a pseudo-platform named for the front door.
	began := time.Now()
	em := emitter{o: opts.Observer}
	pseudo := opts
	pseudo.Platform = Platform{Name: "external-trace", Model: m}
	em.campaignStart(bind.Prog, pseudo, 1, opts.workerCount(), began)
	report := &Report{
		Program:          bind.Prog,
		Platform:         pseudo.Platform.Name,
		Iterations:       1,
		UniqueSignatures: 1,
		SignatureBytes:   items[0].Sig.Len() * 8,
		AssertionFailures: append([]error(nil),
			bind.ValueFaults...),
	}
	res, err := check.ShardedBackend(ctx, backend, builder, items,
		opts.workerCount(), em.checkShardFunc(backend.Name()))
	if err != nil {
		em.campaignEnd(report, err, began)
		return nil, bind, err
	}
	report.CheckStats = res
	report.Violations = res.Violations
	em.campaignEnd(report, nil, began)
	return report, bind, nil
}

// CheckTrace is CheckTraceContext with context.Background().
func CheckTrace(tr *ExecTrace, model string, opts Options) (*Report, *TraceBinding, error) {
	return CheckTraceContext(context.Background(), tr, model, opts)
}

// traceSignature synthesizes a signature for the trace's one execution so
// it can flow through Item/Violation reporting like any decoded signature:
// each load contributes its resolved reads-from source (+2, so the initial
// value and "no entry" stay distinct from store ID 0) as a 32-bit field,
// two fields per word, in load-ID order. Distinct observed interleavings of
// the same trace program therefore get distinct signatures, mirroring the
// instrumentation's 1:1 encoding.
func traceSignature(bind *trace.Binding) sig.Signature {
	var fields []uint32
	for opID := range bind.Source {
		top := bind.Trace.Ops[bind.Source[opID]]
		if top.Kind != trace.Load {
			continue
		}
		rf, ok := bind.RF[opID]
		if !ok {
			fields = append(fields, 0) // value fault: no resolved source
		} else {
			fields = append(fields, uint32(rf+2))
		}
	}
	if len(fields) == 0 {
		return sig.Zero(1)
	}
	words := make([]uint64, (len(fields)+1)/2)
	for i, f := range fields {
		words[i/2] |= uint64(f) << (32 * uint(i%2))
	}
	return sig.New(words)
}
