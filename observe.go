package mtracecheck

import (
	"io"
	"time"

	"mtracecheck/internal/obs"
	"mtracecheck/internal/sig"
)

// Observability facade: internal/obs re-exported so downstream users can
// implement and wire observers without importing internal packages. Attach
// an observer via Options.Observer; it receives typed events from every
// pipeline stage — execution shards, the signature merge, decode workers,
// checking shards, and checkpoints — under two contracts (see the Observer
// docs): observers never perturb results, and aggregating final events
// yields worker-invariant totals.

type (
	// Observer receives pipeline events; see the interface docs for the
	// concurrency and non-perturbation contracts.
	Observer = obs.Observer
	// Metrics aggregates events into atomic counters with Prometheus text
	// exposition, split into worker-invariant Totals and
	// partition-dependent Effort.
	Metrics = obs.Metrics
	// MetricsSnapshot is a consistent copy of a Metrics aggregator.
	MetricsSnapshot = obs.Snapshot
	// MetricsTotals is the worker-invariant half of a snapshot.
	MetricsTotals = obs.Totals
	// MetricsEffort is the partition-dependent half of a snapshot.
	MetricsEffort = obs.Effort
	// CurvePoint samples the unique-interleaving growth curve (Fig. 8).
	CurvePoint = obs.CurvePoint
	// Progress logs rate-limited human-readable campaign lines.
	Progress = obs.Progress
	// Trace writes Chrome trace_event spans viewable in Perfetto.
	Trace = obs.Trace

	// CampaignStartEvent fires once when a campaign begins.
	CampaignStartEvent = obs.CampaignStart
	// CampaignEndEvent fires once when a campaign finishes.
	CampaignEndEvent = obs.CampaignEnd
	// ShardStartEvent fires when a stage shard begins an attempt.
	ShardStartEvent = obs.ShardStart
	// ShardEndEvent fires when a stage shard attempt completes.
	ShardEndEvent = obs.ShardEnd
	// MergeDoneEvent fires after each unique-signature merge.
	MergeDoneEvent = obs.MergeDone
	// CheckpointEvent fires on checkpoint writes and resumes.
	CheckpointEvent = obs.Checkpoint
	// CheckpointOp distinguishes checkpoint saves from resumes.
	CheckpointOp = obs.CheckpointOp
	// FaultCounts tallies injected signature corruption per kind.
	FaultCounts = obs.FaultCounts
	// Stage identifies the pipeline stage an event belongs to.
	Stage = obs.Stage

	// CorpusEvent fires on signature-corpus interactions (lookup at the
	// sort barrier, atomic flush, degraded-to-cold). Observers receive it
	// by implementing CorpusObserver; Metrics does.
	CorpusEvent = obs.CorpusEvent
	// CorpusOp distinguishes corpus lookups, flushes, and refusals.
	CorpusOp = obs.CorpusOp
	// CorpusObserver is the optional Observer extension receiving
	// signature-corpus events.
	CorpusObserver = obs.CorpusObserver
	// CorpusProgram is one corpus key's per-program metrics breakdown
	// (known-good count, hits, misses) in a MetricsSnapshot.
	CorpusProgram = obs.CorpusProgram
)

// Pipeline stages (see Stage).
const (
	StageExecute    = obs.StageExecute
	StageMerge      = obs.StageMerge
	StageDecode     = obs.StageDecode
	StageCheck      = obs.StageCheck
	StageCheckpoint = obs.StageCheckpoint
)

// Checkpoint operations (see CheckpointOp).
const (
	CheckpointSaved   = obs.CheckpointSaved
	CheckpointResumed = obs.CheckpointResumed
)

// Corpus operations (see CorpusOp).
const (
	CorpusLookup  = obs.CorpusLookup
	CorpusFlush   = obs.CorpusFlush
	CorpusIgnored = obs.CorpusIgnored
)

// NewMetrics returns an empty metrics aggregator; read it with
// Metrics.Snapshot or Metrics.WritePrometheus after the campaign.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// NewProgress returns a rate-limited progress logger writing to w, at most
// one throughput line per every (0 selects 500ms).
func NewProgress(w io.Writer, every time.Duration) *Progress {
	return obs.NewProgress(w, every)
}

// NewTraceJSON returns a Chrome trace_event writer emitting to w; call
// Close after the campaign to terminate the JSON array and flush.
func NewTraceJSON(w io.Writer) *Trace { return obs.NewTraceJSON(w) }

// MultiObserver fans events out to several observers in order, skipping
// nil entries; zero or all-nil arguments yield nil, preserving the
// pipeline's zero-cost unobserved path.
func MultiObserver(observers ...Observer) Observer { return obs.Multi(observers...) }

// SignatureMeta is the provenance header of a saved signature set: enough
// to detect checking a stored set against the wrong program, seed, or
// platform. SaveSignatures writes it; LoadSignaturesMeta returns it;
// ValidateSignatureMeta compares it against a campaign configuration.
type SignatureMeta = sig.FileMeta
