// Quickstart: validate one constrained-random test on the simulated x86-TSO
// platform and print what MTraceCheck observed — the minimal end-to-end use
// of the public API.
package main

import (
	"fmt"
	"log"

	"mtracecheck"
)

func main() {
	// A four-thread test over 64 shared words, 50 memory operations per
	// thread — the paper's x86-4-50-64 configuration.
	cfg := mtracecheck.TestConfig{
		Threads:      4,
		OpsPerThread: 50,
		Words:        64,
		Seed:         42,
	}
	report, err := mtracecheck.Run(cfg, mtracecheck.Options{
		Platform:   mtracecheck.PlatformX86(),
		Iterations: 1024,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("MTraceCheck quickstart — x86-4-50-64")
	fmt.Printf("  iterations run:         %d\n", report.Iterations)
	fmt.Printf("  unique interleavings:   %d (%.1f%% of iterations)\n",
		report.UniqueSignatures,
		100*float64(report.UniqueSignatures)/float64(report.Iterations))
	fmt.Printf("  execution signature:    %d bytes\n", report.SignatureBytes)
	complete, noResort, incremental := report.CheckStats.Counts()
	fmt.Printf("  collective checking:    %d complete sorts, %d free, %d incremental\n",
		complete, noResort, incremental)
	if report.Failed() {
		fmt.Printf("  RESULT: FAIL (%d violations)\n", len(report.Violations))
		for _, v := range report.Violations {
			fmt.Printf("    cycle through operations %v\n", v.Cycle)
		}
		return
	}
	fmt.Println("  RESULT: PASS — every observed interleaving is TSO-consistent")
}
