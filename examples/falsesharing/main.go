// Falsesharing sweeps the cache-line layout of a fixed test configuration,
// demonstrating the paper's §6.1 observation: packing multiple shared words
// into one cache line (false sharing) increases line-level contention and
// thereby diversifies the memory-access interleavings a test exposes — more
// unique signatures per iteration budget means better validation coverage.
package main

import (
	"fmt"
	"log"

	"mtracecheck"
)

func main() {
	const iterations = 1024
	fmt.Printf("Unique interleavings vs. false sharing (x86-4-50-64, %d iterations)\n\n", iterations)
	fmt.Printf("%-16s %-22s %-10s\n", "words per line", "unique interleavings", "of iterations")

	for _, wpl := range []int{1, 2, 4, 8, 16} {
		cfg := mtracecheck.TestConfig{
			Threads:      4,
			OpsPerThread: 50,
			Words:        64,
			WordsPerLine: wpl,
			Seed:         3,
		}
		report, err := mtracecheck.Run(cfg, mtracecheck.Options{
			Platform:   mtracecheck.PlatformX86(),
			Iterations: iterations,
			Seed:       11,
		})
		if err != nil {
			log.Fatal(err)
		}
		if report.Failed() {
			log.Fatalf("wpl=%d: unexpected violations on a clean platform", wpl)
		}
		fmt.Printf("%-16d %-22d %.1f%%\n", wpl, report.UniqueSignatures,
			100*float64(report.UniqueSignatures)/float64(report.Iterations))
	}

	fmt.Println("\nExpected trend (paper Fig. 8): more words per line -> more unique interleavings.")
}
