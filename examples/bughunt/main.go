// Bughunt reproduces the paper's §7 bug-injection case studies: three real
// gem5 bugs recreated in the simulated platform, each hunted with its
// calibrated test configuration. Bug 1 and 2 surface as ld→ld ordering
// violations (cyclic constraint graphs, printed in the style of the paper's
// Fig. 13); bug 3 crashes the platform with a protocol deadlock.
package main

import (
	"errors"
	"fmt"
	"log"

	"mtracecheck"
)

type campaign struct {
	name  string
	bug   mtracecheck.Bug
	cfg   mtracecheck.TestConfig
	tests int
	iters int
}

func main() {
	campaigns := []campaign{
		{
			name: "bug 1: ld->ld violation, coherence protocol (Peekaboo variant)",
			bug:  mtracecheck.BugSMInv,
			cfg: mtracecheck.TestConfig{
				Threads: 4, OpsPerThread: 50, Words: 8, WordsPerLine: 4,
			},
			tests: 10, iters: 256,
		},
		{
			name: "bug 2: ld->ld violation, load-store queue",
			bug:  mtracecheck.BugLSQSkip,
			cfg: mtracecheck.TestConfig{
				Threads: 7, OpsPerThread: 200, Words: 32, WordsPerLine: 16,
			},
			tests: 6, iters: 128,
		},
		{
			name: "bug 3: race between writeback and write request",
			bug:  mtracecheck.BugWBRace,
			cfg: mtracecheck.TestConfig{
				Threads: 7, OpsPerThread: 200, Words: 64, WordsPerLine: 1,
			},
			tests: 4, iters: 64,
		},
	}

	for _, c := range campaigns {
		fmt.Printf("== %s ==\n", c.name)
		plat := mtracecheck.BuggyPlatform(c.bug)
		detectingTests, badSigs, crashes := 0, 0, 0
		var firstCycle []int32
		var cycleProg *mtracecheck.Program
		for test := 0; test < c.tests; test++ {
			cfg := c.cfg
			cfg.Seed = int64(test + 1)
			report, err := mtracecheck.Run(cfg, mtracecheck.Options{
				Platform:   plat,
				Iterations: c.iters,
				Seed:       int64(test)*31 + 5,
			})
			switch {
			case errors.Is(err, mtracecheck.ErrCrash):
				crashes++
				detectingTests++
				continue
			case err != nil:
				log.Fatal(err)
			}
			if report.Failed() {
				detectingTests++
				badSigs += len(report.Violations)
				if firstCycle == nil && len(report.Violations) > 0 {
					firstCycle = report.Violations[0].Cycle
					cycleProg = report.Program
				}
			}
		}
		fmt.Printf("   %d/%d tests detected the bug (%d violating signatures, %d crashes)\n",
			detectingTests, c.tests, badSigs, crashes)
		if firstCycle != nil {
			fmt.Println("   first detected cyclic dependency (cf. paper Fig. 13):")
			for _, id := range firstCycle {
				op := cycleProg.OpByID(int(id))
				fmt.Printf("     thread %d  op %-3d  %s\n", op.Thread, op.ID, op)
			}
		}
		fmt.Println()
	}
}
