// Litmusaudit runs the directed litmus library against both simulated
// platforms and a hand-built scenario, showing how MTraceCheck separates
// outcomes that a model *allows* (non-determinism to be embraced) from
// outcomes it *forbids* (bugs to be flagged) — the motivation scenario of
// the paper's introduction.
package main

import (
	"fmt"
	"log"

	"mtracecheck"
)

func main() {
	platforms := []mtracecheck.Platform{
		mtracecheck.PlatformX86(),
		mtracecheck.PlatformARM(),
	}
	const iterations = 1024

	for _, plat := range platforms {
		fmt.Printf("== %s (%s), %d iterations per test ==\n",
			plat.Name, mtracecheck.ModelName(plat), iterations)
		for _, l := range mtracecheck.LitmusTests() {
			observed, report, err := mtracecheck.RunLitmus(l, mtracecheck.Options{
				Platform:   plat,
				Iterations: iterations,
				Seed:       17,
			})
			if err != nil {
				log.Fatalf("%s: %v", l.Name, err)
			}
			status := "allowed"
			if l.ForbiddenUnder(plat.Model) {
				status = "forbidden"
			}
			verdict := "ok"
			if report.Failed() {
				verdict = "VIOLATION"
			}
			fmt.Printf("  %-6s %-9s observed %4d/%d   unique sigs %4d   %s\n",
				l.Name, status, observed, iterations, report.UniqueSignatures, verdict)
		}
		fmt.Println()
	}

	// A hand-built scenario through the same pipeline: message passing with
	// a fence only on the writer side. Under the weak (RMO) platform the
	// reader may still reorder its loads, so the stale-data outcome remains
	// architecturally legal — a classic half-fixed synchronization bug in
	// software, not a hardware violation.
	b := mtracecheck.NewProgramBuilder("mp-writer-fence", 2)
	b.Thread().Store(0).Fence().Store(1) // writer: data, fence, flag
	b.Thread().Load(1).Load(0)           // reader: flag then data, unfenced
	p, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	report, err := mtracecheck.RunProgram(p, mtracecheck.Options{
		Platform:   mtracecheck.PlatformARM(),
		Iterations: iterations,
		Seed:       23,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hand-built %s on ARM: %d unique interleavings, violations: %d (expected 0 — hardware is correct even when software synchronization is not)\n",
		p.Name, report.UniqueSignatures, len(report.Violations))
}
