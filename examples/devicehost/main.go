// Devicehost demonstrates the paper's deployment split: the device under
// validation only collects compact signatures (cheap, minimally intrusive),
// which travel to a host in a small binary blob; the host decodes and checks
// them offline — including long after the silicon session ended. With the
// default static write-serialization mode the signatures alone are
// sufficient: no other runtime data crosses the link.
package main

import (
	"bytes"
	"fmt"
	"log"

	"mtracecheck"
)

func main() {
	cfg := mtracecheck.TestConfig{Threads: 4, OpsPerThread: 50, Words: 32, Seed: 5}
	p, err := mtracecheck.NewProgramBuilderFromConfig(cfg)
	if err != nil {
		log.Fatal(err)
	}
	plat := mtracecheck.PlatformX86()
	const iterations = 1024

	// --- Device side: run the instrumented test, collect signatures. ---
	uniques, err := mtracecheck.CollectSignatures(p, mtracecheck.Options{
		Platform: plat, Iterations: iterations, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	var wire bytes.Buffer
	if err := mtracecheck.SaveSignatures(&wire, nil, uniques); err != nil {
		log.Fatal(err)
	}
	raw := iterations * 50 * 4 / 2 // register-flushing: 4 B per executed load
	fmt.Printf("device: %d iterations -> %d unique signatures, %d bytes on the wire\n",
		iterations, len(uniques), wire.Len())
	fmt.Printf("        (a register-flushing log would ship ≈%d kB)\n", raw*4/1024)

	// --- Host side: load, decode (Algorithm 1), check collectively. ---
	loaded, err := mtracecheck.LoadSignatures(&wire)
	if err != nil {
		log.Fatal(err)
	}
	res, err := mtracecheck.CheckSignatures(p, plat, loaded, nil)
	if err != nil {
		log.Fatal(err)
	}
	complete, noResort, incremental := res.Counts()
	fmt.Printf("host:   checked %d graphs (%d complete, %d free, %d incremental)\n",
		res.Total, complete, noResort, incremental)
	if len(res.Violations) == 0 {
		fmt.Println("host:   RESULT: PASS")
		return
	}
	fmt.Printf("host:   RESULT: FAIL — %d violations\n", len(res.Violations))
}
