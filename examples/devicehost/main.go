// Devicehost demonstrates the paper's deployment split: the device under
// validation only collects compact signatures (cheap, minimally intrusive),
// which travel to a host in a small binary blob; the host decodes and checks
// them offline — including long after the silicon session ended. With the
// default static write-serialization mode the signatures alone are
// sufficient: no other runtime data crosses the link.
//
// With -dist the same campaign instead runs through the distributed
// service: a loopback mtracecheck-server leases the chunk grid to two
// in-process workers and merges their uploads — the multi-device version
// of the same split, with the HTTP wire standing in for the JTAG cable.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"

	"mtracecheck"
	"mtracecheck/internal/dist"
	"mtracecheck/internal/testgen"
)

const iterations = 1024

var cfg = mtracecheck.TestConfig{Threads: 4, OpsPerThread: 50, Words: 32, Seed: 5}

func main() {
	distMode := flag.Bool("dist", false, "run the campaign through a loopback dist server and two workers")
	flag.Parse()
	if *distMode {
		runDist()
		return
	}
	runSplit()
}

// runSplit is the single-device flow, on the context-first Campaign API:
// one campaign value owns both halves, so the host's validation and
// checking reuse the exact (program, options) identity the device ran.
func runSplit() {
	ctx := context.Background()
	p, err := mtracecheck.NewProgramBuilderFromConfig(cfg)
	if err != nil {
		log.Fatal(err)
	}
	plat := mtracecheck.PlatformX86()
	opts := mtracecheck.Options{Platform: plat, Iterations: iterations, Seed: 11}
	campaign, err := mtracecheck.NewCampaign(p, opts)
	if err != nil {
		log.Fatal(err)
	}

	// --- Device side: run the instrumented test, collect signatures. ---
	uniques, err := campaign.Collect(ctx)
	if err != nil {
		log.Fatal(err)
	}
	var wire bytes.Buffer
	// The report identifies the campaign; SaveSignatures records it in the
	// set's provenance header so the host can refuse mismatched artifacts.
	device := &mtracecheck.Report{Program: p, Seed: opts.Seed, Platform: plat.Name}
	if err := mtracecheck.SaveSignatures(&wire, device, uniques); err != nil {
		log.Fatal(err)
	}
	raw := iterations * 50 * 4 / 2 // register-flushing: 4 B per executed load
	fmt.Printf("device: %d iterations -> %d unique signatures, %d bytes on the wire\n",
		iterations, len(uniques), wire.Len())
	fmt.Printf("        (a register-flushing log would ship ≈%d kB)\n", raw*4/1024)

	// --- Host side: load, validate provenance, decode (Algorithm 1), check
	// collectively. ---
	loaded, meta, err := mtracecheck.LoadSignaturesMeta(&wire)
	if err != nil {
		log.Fatal(err)
	}
	if err := mtracecheck.ValidateSignatureMeta(meta, p, opts); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host:   provenance ok (program %#x, seed %d, %s)\n",
		meta.ProgHash, meta.Seed, meta.Platform)
	report, err := campaign.Check(ctx, loaded)
	if err != nil {
		log.Fatal(err)
	}
	complete, noResort, incremental := report.CheckStats.Counts()
	fmt.Printf("host:   checked %d graphs (%d complete, %d free, %d incremental)\n",
		report.CheckStats.Total, complete, noResort, incremental)
	if len(report.Violations) == 0 {
		fmt.Println("host:   RESULT: PASS")
		return
	}
	fmt.Printf("host:   RESULT: FAIL — %d violations\n", len(report.Violations))
}

// runDist is the multi-device flow: the server plays host, the workers
// play devices, and the merged report is bit-identical to runSplit's
// because chunk results are a pure function of (program, options, chunk).
func runDist() {
	srv := dist.NewServer(dist.ServerOptions{})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Shutdown(context.Background())
	base := "http://" + ln.Addr().String()
	fmt.Printf("server: listening on %s\n", base)

	id, err := srv.Submit(dist.JobSpec{
		Test: &testgen.Config{
			Threads: cfg.Threads, OpsPerThread: cfg.OpsPerThread,
			Words: cfg.Words, Seed: cfg.Seed,
		},
		Iterations: iterations,
		Seed:       11,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		w := &dist.Worker{
			Server:       base,
			ID:           fmt.Sprintf("device-%d", i),
			ExitWhenIdle: true,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				log.Printf("worker %s: %v", w.ID, err)
			}
		}()
	}

	report, err := srv.Wait(ctx, id)
	wg.Wait()
	if err != nil {
		log.Fatal(err)
	}
	stats, _ := srv.Stats(id)
	fmt.Printf("server: job %s merged %d iterations from 2 devices (%d redispatched, %d duplicates)\n",
		id, report.Iterations, stats.Redispatched, stats.Duplicates)
	fmt.Printf("server: %d unique signatures\n", report.UniqueSignatures)
	if report.Failed() {
		fmt.Printf("server: RESULT: FAIL — %d violations\n", len(report.Violations))
		return
	}
	fmt.Println("server: RESULT: PASS")
}
