// Devicehost demonstrates the paper's deployment split: the device under
// validation only collects compact signatures (cheap, minimally intrusive),
// which travel to a host in a small binary blob; the host decodes and checks
// them offline — including long after the silicon session ended. With the
// default static write-serialization mode the signatures alone are
// sufficient: no other runtime data crosses the link.
package main

import (
	"bytes"
	"fmt"
	"log"

	"mtracecheck"
)

func main() {
	cfg := mtracecheck.TestConfig{Threads: 4, OpsPerThread: 50, Words: 32, Seed: 5}
	p, err := mtracecheck.NewProgramBuilderFromConfig(cfg)
	if err != nil {
		log.Fatal(err)
	}
	plat := mtracecheck.PlatformX86()
	const iterations = 1024
	opts := mtracecheck.Options{Platform: plat, Iterations: iterations, Seed: 11}

	// --- Device side: run the instrumented test, collect signatures. ---
	uniques, err := mtracecheck.CollectSignatures(p, opts)
	if err != nil {
		log.Fatal(err)
	}
	var wire bytes.Buffer
	// The report identifies the campaign; SaveSignatures records it in the
	// set's provenance header so the host can refuse mismatched artifacts.
	device := &mtracecheck.Report{Program: p, Seed: opts.Seed, Platform: plat.Name}
	if err := mtracecheck.SaveSignatures(&wire, device, uniques); err != nil {
		log.Fatal(err)
	}
	raw := iterations * 50 * 4 / 2 // register-flushing: 4 B per executed load
	fmt.Printf("device: %d iterations -> %d unique signatures, %d bytes on the wire\n",
		iterations, len(uniques), wire.Len())
	fmt.Printf("        (a register-flushing log would ship ≈%d kB)\n", raw*4/1024)

	// --- Host side: load, validate provenance, decode (Algorithm 1), check
	// collectively. ---
	loaded, meta, err := mtracecheck.LoadSignaturesMeta(&wire)
	if err != nil {
		log.Fatal(err)
	}
	if err := mtracecheck.ValidateSignatureMeta(meta, p, opts); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host:   provenance ok (program %#x, seed %d, %s)\n",
		meta.ProgHash, meta.Seed, meta.Platform)
	report, err := mtracecheck.CheckSignatures(p, loaded, opts)
	if err != nil {
		log.Fatal(err)
	}
	complete, noResort, incremental := report.CheckStats.Counts()
	fmt.Printf("host:   checked %d graphs (%d complete, %d free, %d incremental)\n",
		report.CheckStats.Total, complete, noResort, incremental)
	if len(report.Violations) == 0 {
		fmt.Println("host:   RESULT: PASS")
		return
	}
	fmt.Printf("host:   RESULT: FAIL — %d violations\n", len(report.Violations))
}
