module mtracecheck

go 1.22
