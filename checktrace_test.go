package mtracecheck

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mtracecheck/internal/check"
	"mtracecheck/internal/graph"
	"mtracecheck/internal/instrument"
	"mtracecheck/internal/testgen"
	"mtracecheck/internal/trace"
)

// loadGoldenTrace parses one of internal/trace's golden files.
func loadGoldenTrace(t *testing.T, name string) *ExecTrace {
	t.Helper()
	f, err := os.Open(filepath.Join("internal", "trace", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := ParseTrace(f)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return tr
}

// TestCheckTraceGoldenVerdicts pins the verdict of every golden trace under
// every model and every checker backend: the litmus outcomes are classical
// (store buffering, message passing, load buffering, fenced store
// buffering), so a verdict flip here means the trace front door, the graph
// construction, or a backend regressed.
func TestCheckTraceGoldenVerdicts(t *testing.T) {
	cases := []struct {
		file string
		fail map[string]bool // model → expect a finding
	}{
		// SB, both loads see the stores: allowed everywhere.
		{"sc_valid.trace", map[string]bool{"sc": false, "tso": false, "pso": false, "rmo": false}},
		// SB, both loads 0: the classic TSO outcome SC forbids.
		{"sc_violation.trace", map[string]bool{"sc": true, "tso": false, "pso": false, "rmo": false}},
		{"tso_valid.trace", map[string]bool{"sc": true, "tso": false, "pso": false, "rmo": false}},
		// MP, flag seen but data stale: PSO's relaxed st→st order allows it.
		{"tso_violation.trace", map[string]bool{"sc": true, "tso": true, "pso": false, "rmo": false}},
		{"pso_valid.trace", map[string]bool{"sc": true, "tso": true, "pso": false, "rmo": false}},
		// LB, both loads see the other thread's later store: RMO only.
		{"pso_violation.trace", map[string]bool{"sc": true, "tso": true, "pso": true, "rmo": false}},
		{"rmo_valid.trace", map[string]bool{"sc": true, "tso": true, "pso": true, "rmo": false}},
		// Fenced SB, both loads 0: forbidden under every model.
		{"rmo_violation.trace", map[string]bool{"sc": true, "tso": true, "pso": true, "rmo": true}},
	}
	for _, c := range cases {
		tr := loadGoldenTrace(t, c.file)
		for _, model := range TraceModels() {
			want, ok := c.fail[model]
			if !ok {
				t.Fatalf("%s: golden table lacks model %q", c.file, model)
			}
			for _, checker := range CheckerNames() {
				ck, err := ParseChecker(checker)
				if err != nil {
					t.Fatal(err)
				}
				report, bind, err := CheckTrace(tr, model, Options{Checker: ck})
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", c.file, model, checker, err)
				}
				if got := report.Failed(); got != want {
					t.Errorf("%s under %s (%s): failed=%v, want %v (violations %v)",
						c.file, model, checker, got, want, report.Violations)
				}
				if len(bind.ValueFaults) != 0 {
					t.Errorf("%s: unexpected value faults %v", c.file, bind.ValueFaults)
				}
				if want && len(report.Violations) > 0 && len(report.Violations[0].Cycle) < 2 {
					t.Errorf("%s under %s (%s): degenerate cycle %v",
						c.file, model, checker, report.Violations[0].Cycle)
				}
			}
		}
	}
}

// TestCheckTraceValueFault: a load observing a value no store wrote is
// impossible under every model and must surface as an assertion failure —
// Failed() even when the constraint graph itself is acyclic.
func TestCheckTraceValueFault(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader("0: M[0x10] := 1\n1: M[0x10] == 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	report, bind, err := CheckTrace(tr, "sc", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.AssertionFailures) != 1 || len(bind.ValueFaults) != 1 {
		t.Fatalf("value fault not surfaced: report %v, binding %v",
			report.AssertionFailures, bind.ValueFaults)
	}
	if !report.Failed() {
		t.Error("report with a value fault did not Fail()")
	}
	if len(report.Violations) != 0 {
		t.Errorf("acyclic trace reported graph violations %v", report.Violations)
	}
}

// TestCheckTraceRejects: unknown models and unbindable traces are errors,
// not verdicts.
func TestCheckTraceRejects(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader("0: M[0x10] := 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := CheckTrace(tr, "ptx", Options{}); err == nil {
		t.Error("unknown model accepted")
	}
	// Duplicate store values to one address defeat reads-from resolution and
	// must be rejected structurally.
	dup := &ExecTrace{Ops: []TraceOp{
		{Thread: 0, Kind: trace.Store, Addr: 0x10, Value: 1},
		{Thread: 1, Kind: trace.Store, Addr: 0x10, Value: 1},
	}}
	if _, _, err := CheckTrace(dup, "sc", Options{}); err == nil {
		t.Error("ambiguous store values accepted")
	}
}

// TestTraceModels pins the front door's model list to the mcm registry.
func TestTraceModels(t *testing.T) {
	got := TraceModels()
	want := []string{"sc", "tso", "pso", "rmo"}
	if len(got) != len(want) {
		t.Fatalf("TraceModels() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TraceModels() = %v, want %v", got, want)
		}
	}
}

// TestCheckTraceObserver: trace checking reuses the campaign observer
// surface — a metrics observer must see the one-iteration campaign.
func TestCheckTraceObserver(t *testing.T) {
	tr := loadGoldenTrace(t, "sc_valid.trace")
	m := NewMetrics()
	if _, _, err := CheckTrace(tr, "sc", Options{Observer: m}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mtracecheck_campaigns_total 1", "mtracecheck_graphs_checked_total 1"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics snapshot missing %q:\n%s", want, sb.String())
		}
	}
}

// TestConstraintsDifferentialAgainstFastBackends is the oracle's acceptance
// gate: on a full campaign's decoded signature set, the constraints solver
// must agree verdict-for-verdict with every fast backend under the
// differential harness, on both the strong and the weak platform.
func TestConstraintsDifferentialAgainstFastBackends(t *testing.T) {
	cons, err := check.ForName("constraints")
	if err != nil {
		t.Fatal(err)
	}
	for _, mk := range []func() Platform{PlatformX86, PlatformARM} {
		plat := mk()
		cfg := TestConfig{Threads: 4, OpsPerThread: 40, Words: 8, Seed: 11}
		p, err := testgen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		opts := withDefaults(Options{Platform: plat, Iterations: 300, Seed: 7})
		uniques, err := CollectSignatures(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		meta, err := instrument.Analyze(p, plat.RegWidthBits, nil)
		if err != nil {
			t.Fatal(err)
		}
		builder := graph.NewBuilder(p, plat.Model, graph.Options{
			Forwarding: plat.Atomicity.AllowsForwarding(),
			WS:         graph.WSStatic,
		})
		items, err := DecodeItems(context.Background(), meta, builder, uniques, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(items) < 2 {
			t.Fatalf("%s: only %d unique items — campaign too deterministic to exercise the oracle", plat.Name, len(items))
		}
		for _, name := range []string{"collective", "conventional", "incremental", "vectorclock"} {
			fast, err := check.ForName(name)
			if err != nil {
				t.Fatal(err)
			}
			d, err := check.Differential(context.Background(), cons, fast, builder, items)
			if err != nil {
				t.Fatalf("%s vs %s: %v", plat.Name, name, err)
			}
			if d != nil {
				t.Errorf("%s: constraints disagrees with %s: %+v", plat.Name, name, d)
			}
		}
	}
}
