// Command benchjson converts `go test -bench -benchmem` text output (read
// from stdin) into a machine-readable JSON object mapping benchmark name to
// its metrics:
//
//	{"BenchmarkSimIterationX86": {"ns_op": 786043, "b_op": 414420, "allocs_op": 6410}, ...}
//
// The -cpu suffix GOMAXPROCS appends to benchmark names is stripped, so
// successive runs on the same machine key identically. Custom ReportMetric
// units (graphs/op, uniques/op, ...) are carried through under their unit
// name with "/" replaced by "_". It backs `make bench`, which snapshots each
// run as BENCH_<n>.json for allocation-regression comparisons.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

type metrics map[string]float64

func run(in io.Reader, out io.Writer) error {
	results := map[string]metrics{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line) // echo so the run stays watchable
		name, m, ok := parseLine(line)
		if ok {
			results[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// parseLine parses one benchmark result line, e.g.:
//
//	BenchmarkSimIterationX86-8  1627  786043 ns/op  414420 B/op  6410 allocs/op
//
// returning the -cpu-stripped name and the value of every "<num> <unit>"
// metric pair.
func parseLine(line string) (string, metrics, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", nil, false // not an iteration count: a header or status line
	}
	m := metrics{"iterations": mustFloat(fields[1])}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		unit := strings.ReplaceAll(fields[i+1], "/", "_")
		m[unit] = v
	}
	if _, ok := m["ns_op"]; !ok {
		return "", nil, false
	}
	return name, m, true
}

func mustFloat(s string) float64 {
	v, _ := strconv.ParseFloat(s, 64)
	return v
}
