// Command benchjson converts `go test -bench -benchmem` text output (read
// from stdin) into a machine-readable JSON object mapping benchmark name to
// its metrics:
//
//	{"BenchmarkSimIterationX86": {"ns_op": 786043, "b_op": 414420, "allocs_op": 6410}, ...}
//
// The -cpu suffix GOMAXPROCS appends to benchmark names is stripped, so
// successive runs on the same machine key identically. Custom ReportMetric
// units (graphs/op, uniques/op, ...) are carried through under their unit
// name with "/" replaced by "_". It backs `make bench`, which snapshots each
// run as BENCH_<n>.json for allocation-regression comparisons.
//
// With -metrics <file>, a Prometheus text-format snapshot (as written by
// `mtracecheck -metrics-out`) is embedded under the "_metrics" key, so each
// BENCH_<n>.json carries the campaign counters — iterations, uniques,
// sorted vertices, stage seconds — that contextualize its timings.
//
// With -diff OLD.json NEW.json, it instead compares two snapshots, printing
// a per-benchmark table of ns/op, B/op, and allocs/op deltas with percent
// change (negative = NEW is better). It backs `make bench-diff`.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	metricsFile := flag.String("metrics", "",
		"embed this Prometheus text-format snapshot (see mtracecheck -metrics-out) under the \"_metrics\" key")
	diffMode := flag.Bool("diff", false,
		"compare two BENCH_<n>.json snapshots given as arguments: benchjson -diff OLD.json NEW.json")
	flag.Parse()
	if *diffMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two arguments: OLD.json NEW.json")
			os.Exit(2)
		}
		if err := diff(os.Stdout, flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdin, os.Stdout, *metricsFile); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// diff prints a per-benchmark comparison of two snapshot files. Benchmarks
// present in only one file are listed so renames don't vanish silently; the
// "_metrics" pseudo-entry is skipped (campaign counters are not timings).
func diff(out io.Writer, oldPath, newPath string) error {
	oldRes, err := readSnapshot(oldPath)
	if err != nil {
		return err
	}
	newRes, err := readSnapshot(newPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(oldRes))
	for name := range oldRes {
		if name != "_metrics" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Fprintf(out, "%-34s %-8s %14s %14s %9s\n", "benchmark", "metric", oldPath, newPath, "delta")
	for _, name := range names {
		o := oldRes[name]
		n, ok := newRes[name]
		if !ok {
			fmt.Fprintf(out, "%-34s only in %s\n", name, oldPath)
			continue
		}
		for _, unit := range []string{"ns_op", "B_op", "allocs_op"} {
			ov, oOK := o[unit]
			nv, nOK := n[unit]
			if !oOK || !nOK {
				continue
			}
			delta := "n/a"
			if ov != 0 {
				delta = fmt.Sprintf("%+.1f%%", 100*(nv-ov)/ov)
			}
			fmt.Fprintf(out, "%-34s %-8s %14.0f %14.0f %9s\n", name, unit, ov, nv, delta)
		}
	}
	extra := make([]string, 0)
	for name := range newRes {
		if name == "_metrics" {
			continue
		}
		if _, ok := oldRes[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(out, "%-34s only in %s\n", name, newPath)
	}
	return nil
}

func readSnapshot(path string) (map[string]metrics, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var res map[string]metrics
	if err := json.Unmarshal(b, &res); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return res, nil
}

type metrics map[string]float64

func run(in io.Reader, out io.Writer, metricsFile string) error {
	results := map[string]metrics{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line) // echo so the run stays watchable
		name, m, ok := parseLine(line)
		if ok {
			results[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin")
	}
	if metricsFile != "" {
		m, err := readPrometheus(metricsFile)
		if err != nil {
			return fmt.Errorf("reading metrics snapshot: %w", err)
		}
		results["_metrics"] = m
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// readPrometheus parses a Prometheus text-exposition file into a flat
// name→value map; labeled series keep their label set in the key (e.g.
// `mtracecheck_quarantined_total{kind="decode"}`).
func readPrometheus(path string) (metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m := metrics{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("malformed metric line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("malformed metric value in %q: %w", line, err)
		}
		m[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: no metric samples", path)
	}
	return m, nil
}

// parseLine parses one benchmark result line, e.g.:
//
//	BenchmarkSimIterationX86-8  1627  786043 ns/op  414420 B/op  6410 allocs/op
//
// returning the -cpu-stripped name and the value of every "<num> <unit>"
// metric pair.
func parseLine(line string) (string, metrics, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", nil, false // not an iteration count: a header or status line
	}
	m := metrics{"iterations": mustFloat(fields[1])}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		unit := strings.ReplaceAll(fields[i+1], "/", "_")
		m[unit] = v
	}
	if _, ok := m["ns_op"]; !ok {
		return "", nil, false
	}
	return name, m, true
}

func mustFloat(s string) float64 {
	v, _ := strconv.ParseFloat(s, 64)
	return v
}
