// Command corpusstats reports the contents and cross-campaign growth of
// persistent signature corpora (the MTCCORP1 files grown by `mtracecheck
// -corpus`, `mtracecheck-server -corpus`, and `mtc-experiments -exp
// corpus`). For every (program, platform, MCM) key it prints the known
// signature count, and — because sections keep entries in append order
// with their first-seen campaign seed — replays the global unique-growth
// curve across campaigns: each run of consecutive entries with one seed
// is one campaign's contribution, the corpus-level analogue of the
// paper's Fig. 8 per-campaign curve.
//
// Usage:
//
//	corpusstats corpus.mtc [more.mtc ...]
//	corpusstats -growth corpus.mtc    # include the per-campaign growth replay
package main

import (
	"flag"
	"fmt"
	"os"

	"mtracecheck/internal/corpus"
)

func main() { os.Exit(run()) }

func run() int {
	growth := flag.Bool("growth", false, "replay per-key unique growth campaign by campaign")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: corpusstats [-growth] <corpus.mtc> [more.mtc ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		return 2
	}
	status := 0
	for _, path := range flag.Args() {
		if err := report(path, *growth); err != nil {
			fmt.Fprintf(os.Stderr, "corpusstats: %v\n", err)
			status = 1
		}
	}
	return status
}

func report(path string, growth bool) error {
	st, err := corpus.Open(path)
	if err != nil {
		return err
	}
	keys := st.Keys()
	fmt.Printf("%s: %d keys, %d known-good signatures\n", path, len(keys), st.Total())
	for _, k := range keys {
		words, _ := st.Words(k)
		entries := st.Entries(k)
		fmt.Printf("  program %016x  platform %-12s mcm %-4s %3d words  %6d signatures  %d campaigns\n",
			k.ProgHash, k.Platform, k.MCM, words, len(entries), len(campaigns(entries)))
		if !growth {
			continue
		}
		cum := 0
		for i, c := range campaigns(entries) {
			cum += c.appended
			fmt.Printf("    campaign %3d  seed %-12d  +%6d unique  %6d cumulative\n",
				i+1, c.seed, c.appended, cum)
		}
	}
	return nil
}

// campaignRun is one campaign's contribution to a section: entries are
// appended in batches at campaign end, so a maximal run of consecutive
// entries sharing a seed is one campaign's newly-discovered uniques.
type campaignRun struct {
	seed     int64
	appended int
}

func campaigns(entries []corpus.Entry) []campaignRun {
	var runs []campaignRun
	for _, e := range entries {
		if n := len(runs); n > 0 && runs[n-1].seed == e.Seed {
			runs[n-1].appended++
			continue
		}
		runs = append(runs, campaignRun{seed: e.Seed, appended: 1})
	}
	return runs
}
