package mtracecheck

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mtracecheck/internal/check"
	"mtracecheck/internal/graph"
	"mtracecheck/internal/instrument"
	"mtracecheck/internal/mcm"
	"mtracecheck/internal/sig"
	"mtracecheck/internal/sim"
	"mtracecheck/internal/testgen"
)

// TestNoFalsePositivesSweep is the framework's central soundness property:
// executions produced by a defect-free platform under model M must never be
// flagged when checked against M — across models, write-serialization
// modes, false-sharing layouts, and checker implementations. (The paper's
// §8 footnote recounts exactly such a false-positive episode, caused by a
// wrong store-atomicity assumption.)
func TestNoFalsePositivesSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfgs := []TestConfig{
		{Threads: 2, OpsPerThread: 40, Words: 4, Seed: 1},
		{Threads: 4, OpsPerThread: 30, Words: 8, WordsPerLine: 4, Seed: 2},
		{Threads: 3, OpsPerThread: 30, Words: 4, FenceProb: 0.15, Seed: 3},
	}
	for _, model := range mcm.Models {
		for _, tc := range cfgs {
			plat := PlatformX86()
			plat.Model = model
			plat.AllocOrder = nil
			p := testgen.MustGenerate(tc)
			meta, err := instrument.Analyze(p, plat.RegWidthBits, nil)
			if err != nil {
				t.Fatal(err)
			}
			runner, err := sim.NewRunner(plat, p, 17)
			if err != nil {
				t.Fatal(err)
			}
			set := sig.NewSet()
			wsBySig := map[string]graph.WS{}
			for i := 0; i < 80; i++ {
				ex, err := runner.Run()
				if err != nil {
					t.Fatalf("%v %s: %v", model, tc.Name(), err)
				}
				s, err := meta.EncodeValues(ex.LoadValues)
				if err != nil {
					t.Fatalf("%v %s: assertion on clean platform: %v", model, tc.Name(), err)
				}
				if set.Add(s) {
					wsBySig[s.Key()] = ex.WSByWord()
				}
			}
			for _, ws := range []graph.WSMode{graph.WSStatic, graph.WSObserved} {
				builder := graph.NewBuilder(p, model, graph.Options{
					Forwarding: true, WS: ws,
				})
				items, err := DecodeItems(context.Background(), meta, builder, set.Sorted(), wsBySig)
				if err != nil {
					t.Fatal(err)
				}
				conv := check.Conventional(builder, items)
				coll, err := check.Collective(builder, items)
				if err != nil {
					t.Fatal(err)
				}
				if len(conv.Violations) != 0 || len(coll.Violations) != 0 {
					t.Errorf("%v %s ws=%d: false positives (conv %d, coll %d)",
						model, tc.Name(), ws, len(conv.Violations), len(coll.Violations))
				}
			}
		}
	}
}

// TestEngineGoldenSignatures is the typed-event engine's bit-identity
// guard: fixed-seed campaigns — clean and fault-injected, on both platform
// presets, at one and four workers — must reproduce, byte for byte, the
// signature files and report digests recorded before the closure-based
// discrete-event engine was replaced (PR 10). Any drift in RNG draw order,
// event tie-breaking, or completion sequencing shows up here first.
//
// Regenerate the goldens with MTC_UPDATE_GOLDENS=1 (only ever legitimate
// for a change that intentionally alters simulated timing).
func TestEngineGoldenSignatures(t *testing.T) {
	update := os.Getenv("MTC_UPDATE_GOLDENS") == "1"
	dir := filepath.Join("testdata", "engine_goldens")
	if update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	p := testgen.MustGenerate(TestConfig{Threads: 4, OpsPerThread: 40, Words: 8, Seed: 5})
	faults := FaultConfig{
		Seed: 99, BitFlip: 0.05, Truncate: 0.03, Duplicate: 0.05, OutOfRange: 0.03,
		ShardPanic: 0.1, ShardStall: 0.05, StallFor: time.Millisecond,
	}
	cases := []struct {
		name  string
		plat  Platform
		fault FaultConfig
	}{
		{"x86_clean", PlatformX86(), FaultConfig{}},
		{"x86_fault", PlatformX86(), faults},
		{"arm_clean", PlatformARM(), FaultConfig{}},
		{"arm_fault", PlatformARM(), faults},
	}
	for _, c := range cases {
		for _, workers := range []int{1, 4} {
			opts := Options{
				Platform: c.plat, Iterations: 512, Seed: 31, Workers: workers,
				ShardRetries: 2, Fault: c.fault,
			}
			report, err := RunProgram(p, opts)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", c.name, workers, err)
			}
			uniques, err := CollectSignatures(p, opts)
			if err != nil {
				t.Fatalf("%s workers=%d: collect: %v", c.name, workers, err)
			}
			var sigBuf bytes.Buffer
			if err := SaveSignatures(&sigBuf, report, uniques); err != nil {
				t.Fatal(err)
			}
			digest := fmt.Sprintf(
				"iters=%d uniques=%d cycles=%d squashes=%d violations=%d quarantined=%d asserts=%d shardfail=%d\n",
				report.Iterations, report.UniqueSignatures, report.TotalCycles,
				report.Squashes, len(report.Violations), len(report.Quarantined),
				len(report.AssertionFailures), len(report.ShardFailures))
			sigPath := filepath.Join(dir, c.name+".sigs")
			digPath := filepath.Join(dir, c.name+".digest")
			if update && workers == 1 {
				if err := os.WriteFile(sigPath, sigBuf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(digPath, []byte(digest), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			wantSigs, err := os.ReadFile(sigPath)
			if err != nil {
				t.Fatalf("%s: missing golden (run with MTC_UPDATE_GOLDENS=1): %v", c.name, err)
			}
			if !bytes.Equal(sigBuf.Bytes(), wantSigs) {
				t.Errorf("%s workers=%d: signature file differs from pre-engine-swap golden (%d vs %d bytes)",
					c.name, workers, sigBuf.Len(), len(wantSigs))
			}
			wantDig, err := os.ReadFile(digPath)
			if err != nil {
				t.Fatal(err)
			}
			if digest != string(wantDig) {
				t.Errorf("%s workers=%d: report digest differs from golden:\n got %s want %s",
					c.name, workers, digest, wantDig)
			}
		}
	}
}

// TestStrongerModelExecutionsPassWeakerChecks: an execution legal under a
// strong model is legal under every weaker model (the relaxation lattice).
func TestStrongerModelExecutionsPassWeakerChecks(t *testing.T) {
	tc := TestConfig{Threads: 4, OpsPerThread: 40, Words: 8, Seed: 5}
	p := testgen.MustGenerate(tc)
	plat := PlatformX86()
	plat.Model = mcm.SC
	plat.AllocOrder = nil
	meta, err := instrument.Analyze(p, plat.RegWidthBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := sim.NewRunner(plat, p, 23)
	if err != nil {
		t.Fatal(err)
	}
	set := sig.NewSet()
	wsBySig := map[string]graph.WS{}
	for i := 0; i < 60; i++ {
		ex, err := runner.Run()
		if err != nil {
			t.Fatal(err)
		}
		s, err := meta.EncodeValues(ex.LoadValues)
		if err != nil {
			t.Fatal(err)
		}
		if set.Add(s) {
			wsBySig[s.Key()] = ex.WSByWord()
		}
	}
	for _, model := range mcm.Models {
		builder := graph.NewBuilder(p, model, graph.Options{Forwarding: true, WS: graph.WSObserved})
		items, err := DecodeItems(context.Background(), meta, builder, set.Sorted(), wsBySig)
		if err != nil {
			t.Fatal(err)
		}
		res, err := check.Collective(builder, items)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Errorf("SC executions flagged under %v: %d violations", model, len(res.Violations))
		}
	}
}
