package mtracecheck

import (
	"context"
	"testing"

	"mtracecheck/internal/check"
	"mtracecheck/internal/graph"
	"mtracecheck/internal/instrument"
	"mtracecheck/internal/mcm"
	"mtracecheck/internal/sig"
	"mtracecheck/internal/sim"
	"mtracecheck/internal/testgen"
)

// TestNoFalsePositivesSweep is the framework's central soundness property:
// executions produced by a defect-free platform under model M must never be
// flagged when checked against M — across models, write-serialization
// modes, false-sharing layouts, and checker implementations. (The paper's
// §8 footnote recounts exactly such a false-positive episode, caused by a
// wrong store-atomicity assumption.)
func TestNoFalsePositivesSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfgs := []TestConfig{
		{Threads: 2, OpsPerThread: 40, Words: 4, Seed: 1},
		{Threads: 4, OpsPerThread: 30, Words: 8, WordsPerLine: 4, Seed: 2},
		{Threads: 3, OpsPerThread: 30, Words: 4, FenceProb: 0.15, Seed: 3},
	}
	for _, model := range mcm.Models {
		for _, tc := range cfgs {
			plat := PlatformX86()
			plat.Model = model
			plat.AllocOrder = nil
			p := testgen.MustGenerate(tc)
			meta, err := instrument.Analyze(p, plat.RegWidthBits, nil)
			if err != nil {
				t.Fatal(err)
			}
			runner, err := sim.NewRunner(plat, p, 17)
			if err != nil {
				t.Fatal(err)
			}
			set := sig.NewSet()
			wsBySig := map[string]graph.WS{}
			for i := 0; i < 80; i++ {
				ex, err := runner.Run()
				if err != nil {
					t.Fatalf("%v %s: %v", model, tc.Name(), err)
				}
				s, err := meta.EncodeValues(ex.LoadValues)
				if err != nil {
					t.Fatalf("%v %s: assertion on clean platform: %v", model, tc.Name(), err)
				}
				if set.Add(s) {
					wsBySig[s.Key()] = ex.WSByWord()
				}
			}
			for _, ws := range []graph.WSMode{graph.WSStatic, graph.WSObserved} {
				builder := graph.NewBuilder(p, model, graph.Options{
					Forwarding: true, WS: ws,
				})
				items, err := DecodeItems(context.Background(), meta, builder, set.Sorted(), wsBySig)
				if err != nil {
					t.Fatal(err)
				}
				conv := check.Conventional(builder, items)
				coll, err := check.Collective(builder, items)
				if err != nil {
					t.Fatal(err)
				}
				if len(conv.Violations) != 0 || len(coll.Violations) != 0 {
					t.Errorf("%v %s ws=%d: false positives (conv %d, coll %d)",
						model, tc.Name(), ws, len(conv.Violations), len(coll.Violations))
				}
			}
		}
	}
}

// TestStrongerModelExecutionsPassWeakerChecks: an execution legal under a
// strong model is legal under every weaker model (the relaxation lattice).
func TestStrongerModelExecutionsPassWeakerChecks(t *testing.T) {
	tc := TestConfig{Threads: 4, OpsPerThread: 40, Words: 8, Seed: 5}
	p := testgen.MustGenerate(tc)
	plat := PlatformX86()
	plat.Model = mcm.SC
	plat.AllocOrder = nil
	meta, err := instrument.Analyze(p, plat.RegWidthBits, nil)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := sim.NewRunner(plat, p, 23)
	if err != nil {
		t.Fatal(err)
	}
	set := sig.NewSet()
	wsBySig := map[string]graph.WS{}
	for i := 0; i < 60; i++ {
		ex, err := runner.Run()
		if err != nil {
			t.Fatal(err)
		}
		s, err := meta.EncodeValues(ex.LoadValues)
		if err != nil {
			t.Fatal(err)
		}
		if set.Add(s) {
			wsBySig[s.Key()] = ex.WSByWord()
		}
	}
	for _, model := range mcm.Models {
		builder := graph.NewBuilder(p, model, graph.Options{Forwarding: true, WS: graph.WSObserved})
		items, err := DecodeItems(context.Background(), meta, builder, set.Sorted(), wsBySig)
		if err != nil {
			t.Fatal(err)
		}
		res, err := check.Collective(builder, items)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Errorf("SC executions flagged under %v: %d violations", model, len(res.Violations))
		}
	}
}
